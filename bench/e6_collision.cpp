// E6 — Collision handling. Full-duplex feedback lets the receiver shout
// "collision!" within a couple of block-times; timeout MACs burn the
// whole frame plus the ACK wait before anyone notices. Sweep contention.
#include <cstdio>

#include "mac/collision.hpp"
#include "util/table.hpp"

int main() {
  std::puts("E6: contention — timeout MAC vs full-duplex collision"
            " notification (32-block frames, saturated tags)");
  fdb::Table table({"tags", "waste_timeout", "waste_notify", "goodput_timeout",
                    "goodput_notify", "latency_timeout", "latency_notify"});
  for (const std::size_t tags : {1ul, 2ul, 4ul, 6ul, 8ul, 12ul}) {
    fdb::mac::CollisionSimParams params;
    params.num_tags = tags;
    params.sim_slots = 300000;
    params.seed = 11;
    const auto timeout =
        fdb::mac::run_collision_sim(fdb::mac::MacKind::kTimeout, params);
    const auto notify = fdb::mac::run_collision_sim(
        fdb::mac::MacKind::kCollisionNotify, params);
    table.add_row_numeric({static_cast<double>(tags),
                           timeout.wasted_airtime_fraction(),
                           notify.wasted_airtime_fraction(),
                           timeout.goodput_slots_fraction(),
                           notify.goodput_slots_fraction(),
                           timeout.mean_delivery_latency(),
                           notify.mean_delivery_latency()});
  }
  table.print();
  std::puts("\nShape check: wasted airtime grows with contention for both"
            " MACs but stays far lower with notification; goodput and"
            " latency follow.");
  return 0;
}
