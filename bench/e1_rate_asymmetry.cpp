// E1 — Does concurrent feedback cost the data link anything, and how
// does the cost shrink with rate asymmetry k?
//
// Sweep the block size (k = block bits, by construction of the schedule)
// and measure the data-link BER with the feedback transmitter active vs
// silent, plus the feedback link's own BER. Paper claim: once k is
// large, the data BER curves coincide and the feedback stays reliable.
#include <vector>

#include "sim/link_budget.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace {

fdb::sim::LinkSimConfig arm(std::size_t block_bytes, bool feedback) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(block_bytes, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 4e-9;  // mid-sweep operating point
  config.feedback_active = feedback;
  config.seed = 2024;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/60);
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  const std::vector<std::size_t> block_sizes = {1, 2, 4, 8, 16};
  // Two arms per sweep point (feedback on, feedback off), flattened into
  // one batch so every chunk competes for the same workers.
  std::vector<fdb::sim::Scenario> scenarios;
  for (const std::size_t block_bytes : block_sizes) {
    scenarios.push_back({arm(block_bytes, true), cli.trials, 4 * block_bytes});
    scenarios.push_back({arm(block_bytes, false), cli.trials, 4 * block_bytes});
  }
  const auto summaries = runner.run_batch(scenarios);

  fdb::sim::Report report("e1_rate_asymmetry");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "data/feedback BER vs rate asymmetry k"
      " (CW carrier, static channel, noise 4e-9 W)",
      {"block_bytes", "k_bits", "fb_rate_ratio", "data_ber_fb_on",
       "data_ber_fb_off", "feedback_ber", "fb_ber_theory"});
  for (std::size_t i = 0; i < block_sizes.size(); ++i) {
    const auto& on = summaries[2 * i];
    const auto& off = summaries[2 * i + 1];
    const auto& config_on = scenarios[2 * i].config;
    const auto budget = fdb::sim::compute_link_budget(config_on);
    const auto& rates = config_on.modem.data.rates;
    sec.add_row({block_sizes[i], rates.asymmetry,
                 rates.data_rate_bps() / rates.feedback_rate_bps(),
                 on.aligned_data_ber(), off.aligned_data_ber(),
                 on.feedback_ber(), budget.predicted_feedback_ber});
  }
  report.add_note("Shape check: data_ber_fb_on ~= data_ber_fb_off at every"
                  " k; feedback_ber falls as k grows.");
  return report.emit(cli) ? 0 : 1;
}
