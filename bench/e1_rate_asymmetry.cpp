// E1 — Does concurrent feedback cost the data link anything, and how
// does the cost shrink with rate asymmetry k?
//
// Sweep the block size (k = block bits, by construction of the schedule)
// and measure the data-link BER with the feedback transmitter active vs
// silent, plus the feedback link's own BER. Paper claim: once k is
// large, the data BER curves coincide and the feedback stays reliable.
#include <cstdio>

#include "sim/link_budget.hpp"
#include "sim/link_sim.hpp"
#include "util/table.hpp"

namespace {

fdb::sim::LinkSimConfig arm(std::size_t block_bytes, bool feedback) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(block_bytes, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 4e-9;  // mid-sweep operating point
  config.feedback_active = feedback;
  config.seed = 2024;
  return config;
}

}  // namespace

int main() {
  std::puts("E1: data/feedback BER vs rate asymmetry k "
            "(CW carrier, static channel, noise 4e-9 W)");
  fdb::Table table({"block_bytes", "k_bits", "fb_rate_ratio",
                    "data_ber_fb_on", "data_ber_fb_off", "feedback_ber",
                    "fb_ber_theory"});
  const std::size_t trials = 60;
  for (const std::size_t block_bytes : {1ul, 2ul, 4ul, 8ul, 16ul}) {
    const auto config_on = arm(block_bytes, true);
    const auto config_off = arm(block_bytes, false);
    fdb::sim::LinkSimulator sim_on(config_on);
    fdb::sim::LinkSimulator sim_off(config_off);
    sim_on.set_payload_bytes(4 * block_bytes);
    sim_off.set_payload_bytes(4 * block_bytes);
    const auto on = sim_on.run(trials);
    const auto off = sim_off.run(trials);
    const auto budget = fdb::sim::compute_link_budget(config_on);
    const auto& rates = config_on.modem.data.rates;
    table.add_row_numeric({static_cast<double>(block_bytes),
                           static_cast<double>(rates.asymmetry),
                           rates.data_rate_bps() / rates.feedback_rate_bps(),
                           on.aligned_data_ber(), off.aligned_data_ber(),
                           on.feedback_ber(),
                           budget.predicted_feedback_ber});
  }
  table.print();
  std::puts("\nShape check: data_ber_fb_on ~= data_ber_fb_off at every k;"
            " feedback_ber falls as k grows.");
  return 0;
}
