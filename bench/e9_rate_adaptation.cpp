// E9 (extension) — Rate adaptation on instant feedback. A time-varying
// channel alternates good and bad periods of fixed wall-clock length;
// every scheme transmits continuously and is scored on payload bits
// delivered per period. The adaptive controller walks the chip-length
// ladder using per-block verdicts; the oracle always uses the rung that
// delivers the most bits for the current state. Each policy run is a
// self-contained cell, so the schemes fan out through the runner.
#include <string>
#include <vector>

#include "core/rate_adaptation.hpp"
#include "core/theory.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"

namespace {

struct ChannelState {
  double delta;  // envelope swing
  double sigma;  // per-sample envelope noise
};

double bler(const ChannelState& s, std::size_t spc, std::size_t block_bits) {
  const double chip_ber = fdb::core::ook_envelope_ber(s.delta, s.sigma, spc);
  return fdb::core::block_error_rate(2.0 * chip_ber, block_bits);
}

/// Expected delivered bits per sample of airtime at this rung/state.
double expected_rate(const ChannelState& s, std::size_t spc,
                     std::size_t block_bits) {
  return (1.0 - bler(s, spc, block_bits)) / static_cast<double>(spc);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/20,
                                       "channel periods per policy walk");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  const ChannelState good{0.08, 0.05};
  const ChannelState bad{0.04, 0.05};
  const std::size_t block_bits = 72;
  const std::vector<std::size_t> ladder = {4, 8, 16, 32, 64};
  const std::size_t period_samples = 4'000'000;
  const std::size_t periods = cli.trials;

  // One run of a transmit policy over the whole walk. The policy is a
  // callback giving the chip length for the next block; verdicts are
  // reported back for adaptive policies.
  auto run_policy = [&](auto&& next_spc, auto&& report_verdict) -> double {
    fdb::Rng rng(17);
    double delivered = 0.0;
    for (std::size_t period = 0; period < periods; ++period) {
      const ChannelState& state = period % 2 == 0 ? good : bad;
      std::size_t t = 0;
      while (t < period_samples) {
        const std::size_t spc = next_spc(state);
        const bool ok = !rng.chance(bler(state, spc, block_bits));
        report_verdict(ok);
        delivered += ok ? static_cast<double>(block_bits) : 0.0;
        t += spc * block_bits;
      }
    }
    return delivered / static_cast<double>(periods * period_samples);
  };
  auto no_report = [](bool) {};

  fdb::core::RateAdaptConfig adapt_config;
  adapt_config.chip_ladder = ladder;
  adapt_config.window_blocks = 64;
  adapt_config.min_dwell_blocks = 64;
  adapt_config.upshift_below = 0.01;
  adapt_config.initial_rung = 2;

  struct SchemeResult {
    std::string name;
    double bits_per_sample = 0.0;
    std::uint64_t upshifts = 0;
    std::uint64_t downshifts = 0;
  };

  // Scheme cells: oracle, adaptive, then one fixed arm per rung. Each
  // constructs its own policy state, so they run concurrently.
  const std::size_t n_schemes = 2 + ladder.size();
  const auto results = runner.map(n_schemes, [&](std::size_t i) {
    SchemeResult r;
    if (i == 0) {
      // Oracle: per-state best rung by expected delivered rate.
      r.name = "oracle";
      r.bits_per_sample = run_policy(
          [&](const ChannelState& s) {
            std::size_t best = 0;
            for (std::size_t rung = 1; rung < ladder.size(); ++rung) {
              if (expected_rate(s, ladder[rung], block_bits) >
                  expected_rate(s, ladder[best], block_bits)) {
                best = rung;
              }
            }
            return ladder[best];
          },
          no_report);
    } else if (i == 1) {
      // Adaptive controller (does not see the state, only verdicts).
      // Larger window + stricter upshift gate than the defaults:
      // probing a faster rate costs a dwell's worth of mostly-lost
      // blocks, so the evidence bar for "channel got better" is high.
      r.name = "adaptive";
      fdb::core::RateController controller(adapt_config);
      r.bits_per_sample = run_policy(
          [&](const ChannelState&) { return controller.samples_per_chip(); },
          [&](bool ok) { controller.on_block_verdict(ok); });
      r.upshifts = controller.upshifts();
      r.downshifts = controller.downshifts();
    } else {
      const std::size_t spc = ladder[i - 2];
      r.name = "fixed_spc" + std::to_string(spc);
      r.bits_per_sample = run_policy(
          [&](const ChannelState&) { return spc; }, no_report);
    }
    return r;
  });

  const double oracle = results[0].bits_per_sample;
  fdb::sim::Report report("e9_rate_adaptation");
  report.set_run_info(periods, runner.jobs());
  auto& sec = report.section(
      "adaptive vs fixed chip length, wall-clock-fair"
      " (good: swing .08, bad: swing .04; sigma .05)",
      {"scheme", "bits_per_sample", "fraction_of_oracle"});
  for (const auto& r : results) {
    sec.add_row({r.name, r.bits_per_sample,
                 oracle > 0.0 ? r.bits_per_sample / oracle : 0.0});
  }
  auto& shifts = report.section(
      "controller transitions", {"upshifts", "downshifts", "periods"});
  shifts.add_row({static_cast<double>(results[1].upshifts),
                  static_cast<double>(results[1].downshifts),
                  static_cast<double>(periods)});
  report.add_note("Shape check: adaptive approaches the oracle without"
                  " knowing the channel, and no single fixed rate does as"
                  " well across both states: fast rungs deliver nothing in"
                  " bad periods, slow rungs squander good ones.");
  return report.emit(cli) ? 0 : 1;
}
