// E9 (extension) — Rate adaptation on instant feedback. A time-varying
// channel alternates good and bad periods of fixed wall-clock length;
// every scheme transmits continuously and is scored on payload bits
// delivered per period. The adaptive controller walks the chip-length
// ladder using per-block verdicts; the oracle always uses the rung that
// delivers the most bits for the current state.
#include <cstdio>
#include <vector>

#include "core/rate_adaptation.hpp"
#include "core/theory.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct ChannelState {
  double delta;  // envelope swing
  double sigma;  // per-sample envelope noise
};

double bler(const ChannelState& s, std::size_t spc, std::size_t block_bits) {
  const double chip_ber = fdb::core::ook_envelope_ber(s.delta, s.sigma, spc);
  return fdb::core::block_error_rate(2.0 * chip_ber, block_bits);
}

/// Expected delivered bits per sample of airtime at this rung/state.
double expected_rate(const ChannelState& s, std::size_t spc,
                     std::size_t block_bits) {
  return (1.0 - bler(s, spc, block_bits)) / static_cast<double>(spc);
}

}  // namespace

int main() {
  std::puts("E9: adaptive vs fixed chip length, wall-clock-fair"
            " (good: swing .08, bad: swing .04; sigma .05)");
  const ChannelState good{0.08, 0.05};
  const ChannelState bad{0.04, 0.05};
  const std::size_t block_bits = 72;
  const std::vector<std::size_t> ladder = {4, 8, 16, 32, 64};
  const std::size_t period_samples = 4'000'000;
  const std::size_t periods = 20;

  // One run of a transmit policy over the whole walk. The policy is a
  // callback giving the chip length for the next block; verdicts are
  // reported back for adaptive policies.
  auto run_policy = [&](auto&& next_spc, auto&& report) -> double {
    fdb::Rng rng(17);
    double delivered = 0.0;
    for (std::size_t period = 0; period < periods; ++period) {
      const ChannelState& state = period % 2 == 0 ? good : bad;
      std::size_t t = 0;
      while (t < period_samples) {
        const std::size_t spc = next_spc(state);
        const bool ok = !rng.chance(bler(state, spc, block_bits));
        report(ok);
        delivered += ok ? static_cast<double>(block_bits) : 0.0;
        t += spc * block_bits;
      }
    }
    return delivered / static_cast<double>(periods * period_samples);
  };
  auto no_report = [](bool) {};

  fdb::Table table({"scheme", "bits_per_sample", "fraction_of_oracle"});

  // Oracle: per-state best rung by expected delivered rate.
  const double oracle = run_policy(
      [&](const ChannelState& s) {
        std::size_t best = 0;
        for (std::size_t r = 1; r < ladder.size(); ++r) {
          if (expected_rate(s, ladder[r], block_bits) >
              expected_rate(s, ladder[best], block_bits)) {
            best = r;
          }
        }
        return ladder[best];
      },
      no_report);

  // Adaptive controller (does not see the state, only verdicts).
  // Larger window + stricter upshift gate than the defaults: probing a
  // faster rate costs a dwell's worth of mostly-lost blocks, so the
  // evidence bar for "channel got better" should be high.
  fdb::core::RateAdaptConfig config;
  config.chip_ladder = ladder;
  config.window_blocks = 64;
  config.min_dwell_blocks = 64;
  config.upshift_below = 0.01;
  config.initial_rung = 2;
  fdb::core::RateController controller(config);
  const double adaptive = run_policy(
      [&](const ChannelState&) { return controller.samples_per_chip(); },
      [&](bool ok) { controller.on_block_verdict(ok); });

  table.add_row({"oracle", fdb::format_g(oracle), "1"});
  table.add_row({"adaptive", fdb::format_g(adaptive),
                 fdb::format_g(adaptive / oracle)});
  for (const std::size_t spc : ladder) {
    const double fixed = run_policy(
        [&](const ChannelState&) { return spc; }, no_report);
    table.add_row({"fixed_spc" + std::to_string(spc),
                   fdb::format_g(fixed), fdb::format_g(fixed / oracle)});
  }
  table.print();
  std::printf("\ncontroller: %llu upshifts, %llu downshifts over %zu"
              " channel periods\n",
              static_cast<unsigned long long>(controller.upshifts()),
              static_cast<unsigned long long>(controller.downshifts()),
              periods);
  std::puts("Shape check: adaptive approaches the oracle without knowing"
            " the channel, and no single fixed rate does as well across"
            " both states: fast rungs deliver nothing in bad periods,"
            " slow rungs squander good ones.");
  return 0;
}
