// E7 — Carrier realism. CW illumination is the easy case: flat
// envelope, every chip visible. A TV-style OFDM carrier fluctuates per
// sample, so decoding needs real averaging; fading stresses acquisition.
// The design claim: the same receiver survives all arms, trading rate
// (samples per chip) for robustness.
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace {

fdb::sim::LinkSimConfig arm(const std::string& carrier,
                            const std::string& fading,
                            std::size_t samples_per_chip) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(4, samples_per_chip);
  config.carrier = carrier;
  config.fading = fading;
  config.noise_power_override_w = 1e-10;
  config.seed = 99;
  if (carrier == "ofdm_tv") {
    // Ambient-carrier operation is a short-range regime: the original
    // ambient-backscatter demos put devices inches to a couple of feet
    // apart, where the relative envelope swing reaches tens of percent.
    // Use that geometry here (15 cm separation, sub-metre path-loss
    // reference) so the OFDM arm exercises its intended operating point.
    config.pathloss.reference_distance_m = 0.1;
    config.pathloss.reference_loss_db = 10.0;
    config.a_to_b_m = 0.15;
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/0,
                                       "trials per arm (0 = scale with"
                                       " chip length)");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  struct Arm {
    std::string carrier;
    std::string fading;
    std::size_t spc;
  };
  std::vector<Arm> arms;
  std::vector<fdb::sim::Scenario> scenarios;
  for (const auto& carrier : {std::string("cw"), std::string("ofdm_tv")}) {
    for (const auto& fading :
         {std::string("static"), std::string("rayleigh")}) {
      // CW has a flat envelope and decodes at short chips; the OFDM
      // carrier fluctuates per-sample and needs far more averaging —
      // the sweep shows where each becomes viable.
      const std::vector<std::size_t> chip_lengths =
          carrier == "cw" ? std::vector<std::size_t>{6, 20, 60}
                          : std::vector<std::size_t>{60, 200, 600};
      for (const std::size_t spc : chip_lengths) {
        const std::size_t trials =
            cli.trials ? cli.trials : (spc >= 200 ? 15ul : 40ul);
        arms.push_back({carrier, fading, spc});
        scenarios.push_back({arm(carrier, fading, spc), trials, 12});
      }
    }
  }
  const auto summaries = runner.run_batch(scenarios);

  fdb::sim::Report report("e7_ambient_robustness");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "carrier/fading robustness vs chip length",
      {"carrier", "fading", "samples_per_chip", "data_rate_kbps", "data_ber",
       "sync_fail", "feedback_ber"});
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const auto& s = summaries[i];
    const auto& rates = scenarios[i].config.modem.data.rates;
    sec.add_row({arms[i].carrier, arms[i].fading, arms[i].spc,
                 rates.data_rate_bps() / 1e3, s.data_ber(),
                 s.sync_failure_rate(), s.feedback_ber()});
  }
  report.add_note("Shape check: CW decodes at every rate; OFDM needs longer"
                  " chips (lower rate) to average its envelope fluctuation;"
                  " Rayleigh adds residual frame losses at any rate.");
  return report.emit(cli) ? 0 : 1;
}
