// E11 — Network-scale scenarios. The paper's headline mechanisms
// (instant collision notification, concurrent feedback) only pay off in
// *networks* of tags; this experiment runs the named deployment
// scenarios through the sample-level NetworkSimulator with both MACs
// and reports channel waste, goodput, collision-detection latency and
// energy outages. Per-tag statistics for the dense deployment show the
// fairness picture.
#include <string>
#include <vector>

#include "channel/scene.hpp"
#include "sim/network_sim.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/12,
                                       "network trials per scenario/MAC arm");
  const fdb::sim::ExperimentRunner runner(cli.jobs);
  const std::size_t num_tags = 8;

  fdb::sim::Report report("e11_network");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "network scenarios: timeout MAC vs full-duplex collision notification"
      " (8 tags, sample-level PHY verdicts)",
      {"scenario", "mac", "attempted", "delivered", "collisions",
       "sync_failures", "goodput_kbps", "waste_fraction", "detect_latency",
       "outage_fraction"});

  double dense_waste_timeout = -1.0;
  double dense_waste_notify = -1.0;
  fdb::sim::NetworkSimSummary dense_notify_summary;

  for (const auto& name : fdb::sim::scenario_names()) {
    for (const auto kind : {fdb::mac::MacKind::kTimeout,
                            fdb::mac::MacKind::kCollisionNotify}) {
      auto scenario = fdb::sim::make_scenario(name, num_tags, /*seed=*/17);
      scenario.config.mac_kind = kind;
      const fdb::sim::NetworkSimulator sim(scenario.config);
      const auto summary =
          runner.run_chunked<fdb::sim::NetworkSimSummary>(
              cli.trials, [&sim](fdb::sim::NetworkSimSummary& acc,
                                 std::size_t trial) {
                acc.add(sim.run_trial(trial));
              });
      const double seconds = static_cast<double>(summary.slots) *
                             sim.slot_seconds();
      const double goodput_kbps =
          seconds > 0.0
              ? static_cast<double>(summary.bits_delivered()) / seconds / 1e3
              : 0.0;
      const bool notify = kind == fdb::mac::MacKind::kCollisionNotify;
      sec.add_row({name, notify ? "notify" : "timeout",
                   summary.frames_attempted(), summary.frames_delivered(),
                   summary.collisions, summary.sync_failures, goodput_kbps,
                   summary.wasted_airtime_fraction(),
                   summary.mean_detect_latency_slots(),
                   summary.energy_outage_fraction()});
      if (name == "dense-deployment") {
        (notify ? dense_waste_notify : dense_waste_timeout) =
            summary.wasted_airtime_fraction();
        if (notify) dense_notify_summary = summary;
      }
    }
  }

  // Per-tag fairness picture for the dense deployment under the FD MAC.
  {
    auto scenario =
        fdb::sim::make_scenario("dense-deployment", num_tags, /*seed=*/17);
    const fdb::sim::NetworkSimulator sim(scenario.config);
    auto& tag_sec = report.section(
        "dense-deployment per-tag (notify MAC)",
        {"tag", "dist_to_rx_m", "attempted", "delivered", "delivery_rate",
         "goodput_bits"});
    const auto& scene = sim.scene();
    for (std::size_t k = 0; k < dense_notify_summary.tags.size(); ++k) {
      const auto& t = dense_notify_summary.tags[k];
      const double d = fdb::channel::distance_m(
          scene.device(sim.tag_device(k)).position,
          scene.device(sim.receiver_device()).position);
      const double rate =
          t.frames_attempted
              ? static_cast<double>(t.frames_delivered) /
                    static_cast<double>(t.frames_attempted)
              : 0.0;
      tag_sec.add_row_numeric({static_cast<double>(k), d,
                               static_cast<double>(t.frames_attempted),
                               static_cast<double>(t.frames_delivered), rate,
                               static_cast<double>(t.payload_bits_delivered)});
    }
  }

  report.add_note(
      "Shape check: the notify MAC detects collisions in ~notify_delay"
      " block-times instead of frame+timeout, so wasted airtime in the"
      " dense deployment drops sharply (timeout " +
      std::to_string(dense_waste_timeout) + " vs notify " +
      std::to_string(dense_waste_notify) +
      "); capture lets the timeout MAC deliver through some collisions in"
      " near-far, which notification deliberately aborts.");
  report.add_note(
      "Verdicts are PHY-grounded: every completed frame is synthesized as"
      " sample streams at the receiver and decoded by the batched"
      " FdDataReceiver; collisions corrupt real envelopes, not abstract"
      " slots.");
  return report.emit(cli) ? 0 : 1;
}
