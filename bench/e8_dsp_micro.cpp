// E8 — Feasibility table: throughput of each receive-chain stage in
// samples (or chips) per second. A microcontroller-class decoder needs
// the whole chain to clear the ADC rate with a large margin; these
// numbers also put a floor under the flowgraph engine's overhead.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/feedback.hpp"
#include "core/self_interference.hpp"
#include "dsp/correlator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/moving_average.hpp"
#include "flowgraph/blocks_std.hpp"
#include "flowgraph/graph.hpp"
#include "phy/modem.hpp"
#include "phy/preamble.hpp"
#include "phy/slicer.hpp"
#include "util/rng.hpp"

namespace {

std::vector<fdb::cf32> random_iq(std::size_t n, std::uint64_t seed) {
  fdb::Rng rng(seed);
  std::vector<fdb::cf32> samples(n);
  for (auto& s : samples) s = rng.cn(1.0);
  return samples;
}

std::vector<float> random_envelope(std::size_t n, std::uint64_t seed) {
  fdb::Rng rng(seed);
  std::vector<float> samples(n);
  for (auto& s : samples) {
    s = 1.0f + 0.1f * static_cast<float>(rng.uniform());
  }
  return samples;
}

void BM_EnvelopeDetector(benchmark::State& state) {
  const auto iq = random_iq(4096, 1);
  fdb::dsp::EnvelopeDetector detector(100e3, 2e6);
  std::vector<float> out(iq.size());
  for (auto _ : state) {
    detector.process(iq, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(iq.size()));
}
BENCHMARK(BM_EnvelopeDetector);

void BM_MovingAverage(benchmark::State& state) {
  const auto env = random_envelope(4096, 2);
  fdb::dsp::MovingAverage<float> avg(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    float acc = 0.0f;
    for (const float x : env) acc += avg.process(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_MovingAverage)->Arg(16)->Arg(64)->Arg(256);

void BM_Fir(benchmark::State& state) {
  const auto env = random_envelope(4096, 3);
  fdb::dsp::FirFilterF fir(fdb::dsp::design_lowpass(
      0.2, static_cast<std::size_t>(state.range(0))));
  std::vector<float> out(env.size());
  for (auto _ : state) {
    fir.process(env, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_Fir)->Arg(15)->Arg(63);

void BM_SlidingCorrelator(benchmark::State& state) {
  const auto env = random_envelope(4096, 4);
  fdb::dsp::SlidingCorrelator corr(
      fdb::phy::chips_to_pattern(fdb::phy::default_preamble_chips()), 6);
  for (auto _ : state) {
    float acc = 0.0f;
    for (const float x : env) acc += corr.process(x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_SlidingCorrelator);

void BM_IntegrateSliceChain(benchmark::State& state) {
  const auto env = random_envelope(4096, 5);
  fdb::phy::IntegrateAndDump integrator(6);
  fdb::phy::AdaptiveSlicer slicer;
  for (auto _ : state) {
    std::vector<float> chips;
    integrator.process(env, chips);
    std::vector<std::uint8_t> bits;
    slicer.process(chips, bits);
    benchmark::DoNotOptimize(bits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_IntegrateSliceChain);

void BM_SelfInterferenceNormalizer(benchmark::State& state) {
  const auto env = random_envelope(4096, 6);
  std::vector<std::uint8_t> states(env.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    states[i] = (i / 480) % 2;
  }
  std::vector<float> out(env.size());
  for (auto _ : state) {
    fdb::core::SelfInterferenceNormalizer::normalize_batch(env, states, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_SelfInterferenceNormalizer);

void BM_FeedbackDecode(benchmark::State& state) {
  fdb::phy::RateConfig rates;
  rates.samples_per_chip = 6;
  rates.asymmetry = 40;
  const fdb::core::FeedbackConfig config;
  fdb::core::FeedbackDecoder decoder(rates, config);
  const auto env = random_envelope(rates.samples_per_feedback_bit() * 8, 7);
  std::vector<std::uint8_t> own(env.size());
  for (std::size_t i = 0; i < own.size(); ++i) own[i] = (i / 12) % 2;
  for (auto _ : state) {
    const auto result = decoder.decode(env, own, 8);
    benchmark::DoNotOptimize(result.bits.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_FeedbackDecode);

void BM_Fft(benchmark::State& state) {
  auto data = random_iq(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    fdb::dsp::fft(data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(4096);

void BM_FullFrameDecode(benchmark::State& state) {
  // Whole receive chain: sync + slice + FM0 + deframe of a 32B frame.
  fdb::phy::ModemConfig config;
  config.rates.samples_per_chip = 6;
  fdb::phy::BackscatterTx tx(config);
  fdb::phy::BackscatterRx rx(config);
  std::vector<std::uint8_t> payload(32, 0x5A);
  const auto states = tx.modulate_frame(payload);
  std::vector<float> env;
  env.insert(env.end(), 100, 1.0f);
  for (const auto s : states) env.push_back(s ? 1.3f : 1.0f);
  env.insert(env.end(), 100, 1.0f);
  for (auto _ : state) {
    const auto result = rx.demodulate_frame(env);
    benchmark::DoNotOptimize(result.payload.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(env.size()));
}
BENCHMARK(BM_FullFrameDecode);

void BM_FlowgraphThroughput(benchmark::State& state) {
  // Engine overhead: source -> moving average -> null sink.
  for (auto _ : state) {
    fdb::fg::Graph graph;
    auto source = std::make_shared<fdb::fg::VectorSourceF>(
        std::vector<float>(65536, 1.0f));
    auto avg = std::make_shared<fdb::fg::MovingAverageBlockF>(32);
    auto sink = std::make_shared<fdb::fg::NullSinkF>();
    const auto s = graph.add(source);
    const auto a = graph.add(avg);
    const auto k = graph.add(sink);
    graph.connect(s, 0, a, 0);
    graph.connect(a, 0, k, 0);
    graph.run();
    benchmark::DoNotOptimize(sink->consumed());
  }
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_FlowgraphThroughput);

}  // namespace

BENCHMARK_MAIN();
