// E8 — Feasibility table: throughput of each receive-chain stage in
// samples (or chips) per second. A microcontroller-class decoder needs
// the whole chain to clear the ADC rate with a large margin; these
// numbers also put a floor under the flowgraph engine's overhead.
//
// Self-timed (no external benchmark library): each stage owns its state
// and runs `--trials` timed repetitions; repetition throughputs
// aggregate into RunningStats for mean/CI/min/max. Stages fan out
// across the runner's workers — keep --jobs 1 (the default here) for
// the cleanest timings, raise it for a quick smoke pass. Pipe
// `--format json --output BENCH_e8.json` to refresh the committed perf
// trajectory.
#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "core/feedback.hpp"
#include "core/self_interference.hpp"
#include "dsp/correlator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/moving_average.hpp"
#include "flowgraph/blocks_std.hpp"
#include "flowgraph/graph.hpp"
#include "phy/modem.hpp"
#include "phy/preamble.hpp"
#include "phy/slicer.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

// Sink the compiler cannot prove dead, so timed loops survive -O2.
// thread_local: stages run on runner workers when --jobs > 1, and a
// shared non-atomic sink would be a racing read-modify-write.
thread_local volatile float g_sink = 0.0f;

std::vector<fdb::cf32> random_iq(std::size_t n, std::uint64_t seed) {
  fdb::Rng rng(seed);
  std::vector<fdb::cf32> samples(n);
  for (auto& s : samples) s = rng.cn(1.0);
  return samples;
}

std::vector<float> random_envelope(std::size_t n, std::uint64_t seed) {
  fdb::Rng rng(seed);
  std::vector<float> samples(n);
  for (auto& s : samples) {
    s = 1.0f + 0.1f * static_cast<float>(rng.uniform());
  }
  return samples;
}

struct StageResult {
  std::string name;
  std::size_t items_per_rep = 0;
  fdb::RunningStats msps;  // per-repetition throughput, Msamples/s
};

/// One micro-bench stage: `items` samples processed per inner pass,
/// `inner` passes per timed repetition (so cheap kernels dwarf clock
/// granularity), `pass` does one pass.
StageResult time_stage(const std::string& name, std::size_t items,
                       std::size_t inner, std::size_t reps,
                       const std::function<void()>& pass) {
  StageResult result;
  result.name = name;
  result.items_per_rep = items * inner;
  for (std::size_t warm = 0; warm < 2; ++warm) pass();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < inner; ++k) pass();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (seconds > 0.0) {
      result.msps.add(static_cast<double>(result.items_per_rep) / seconds /
                      1e6);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/20,
                                 "timed repetitions per stage");
  // Unlike the Monte-Carlo benches, wall-clock numbers are cleanest
  // with one worker; parallel stages only perturb each other.
  if (cli.jobs == 0) cli.jobs = 1;
  const fdb::sim::ExperimentRunner runner(cli.jobs);
  const std::size_t reps = cli.trials;

  using StageFn = std::function<StageResult(std::size_t)>;
  std::vector<StageFn> stages;

  stages.push_back([](std::size_t n) {
    const auto iq = random_iq(4096, 1);
    fdb::dsp::EnvelopeDetector detector(100e3, 2e6);
    std::vector<float> out(iq.size());
    return time_stage("envelope_detector", iq.size(), 64, n, [&] {
      detector.process(iq, out);
      g_sink = g_sink + out[0];
    });
  });
  for (const std::size_t window : {16ul, 64ul, 256ul}) {
    stages.push_back([window](std::size_t n) {
      const auto env = random_envelope(4096, 2);
      fdb::dsp::MovingAverage<float> avg(window);
      return time_stage("moving_average_w" + std::to_string(window),
                        env.size(), 64, n, [&] {
                          float acc = 0.0f;
                          for (const float x : env) acc += avg.process(x);
                          g_sink = g_sink + acc;
                        });
    });
  }
  for (const std::size_t taps : {15ul, 63ul}) {
    stages.push_back([taps](std::size_t n) {
      const auto env = random_envelope(4096, 3);
      fdb::dsp::FirFilterF fir(fdb::dsp::design_lowpass(0.2, taps));
      std::vector<float> out(env.size());
      return time_stage("fir_taps" + std::to_string(taps), env.size(), 16, n,
                        [&] {
                          fir.process(env, out);
                          g_sink = g_sink + out[0];
                        });
    });
  }
  stages.push_back([](std::size_t n) {
    const auto env = random_envelope(4096, 4);
    fdb::dsp::SlidingCorrelator corr(
        fdb::phy::chips_to_pattern(fdb::phy::default_preamble_chips()), 6);
    return time_stage("sliding_correlator", env.size(), 16, n, [&] {
      float acc = 0.0f;
      for (const float x : env) acc += corr.process(x);
      g_sink = g_sink + acc;
    });
  });
  stages.push_back([](std::size_t n) {
    const auto env = random_envelope(4096, 5);
    fdb::phy::IntegrateAndDump integrator(6);
    fdb::phy::AdaptiveSlicer slicer;
    return time_stage("integrate_slice_chain", env.size(), 32, n, [&] {
      std::vector<float> chips;
      integrator.process(env, chips);
      std::vector<std::uint8_t> bits;
      slicer.process(chips, bits);
      g_sink = g_sink + (bits.empty() ? 0.0f : bits[0]);
    });
  });
  stages.push_back([](std::size_t n) {
    const auto env = random_envelope(4096, 6);
    std::vector<std::uint8_t> states(env.size());
    for (std::size_t i = 0; i < states.size(); ++i) states[i] = (i / 480) % 2;
    std::vector<float> out(env.size());
    return time_stage("self_interference_normalizer", env.size(), 32, n, [&] {
      fdb::core::SelfInterferenceNormalizer::normalize_batch(env, states,
                                                             out);
      g_sink = g_sink + out[0];
    });
  });
  stages.push_back([](std::size_t n) {
    fdb::phy::RateConfig rates;
    rates.samples_per_chip = 6;
    rates.asymmetry = 40;
    const fdb::core::FeedbackConfig config;
    fdb::core::FeedbackDecoder decoder(rates, config);
    const auto env = random_envelope(rates.samples_per_feedback_bit() * 8, 7);
    std::vector<std::uint8_t> own(env.size());
    for (std::size_t i = 0; i < own.size(); ++i) own[i] = (i / 12) % 2;
    return time_stage("feedback_decode", env.size(), 8, n, [&] {
      const auto result = decoder.decode(env, own, 8);
      g_sink = g_sink + (result.bits.empty() ? 0.0f : result.bits[0]);
    });
  });
  for (const std::size_t fft_size : {256ul, 4096ul}) {
    stages.push_back([fft_size](std::size_t n) {
      auto data = random_iq(fft_size, 8);
      return time_stage("fft_" + std::to_string(fft_size), fft_size, 32, n,
                        [&] {
                          fdb::dsp::fft(data);
                          g_sink = g_sink + data[0].real();
                        });
    });
  }
  stages.push_back([](std::size_t n) {
    // Whole receive chain: sync + slice + FM0 + deframe of a 32B frame.
    fdb::phy::ModemConfig config;
    config.rates.samples_per_chip = 6;
    fdb::phy::BackscatterTx tx(config);
    fdb::phy::BackscatterRx rx(config);
    std::vector<std::uint8_t> payload(32, 0x5A);
    const auto states = tx.modulate_frame(payload);
    std::vector<float> env;
    env.insert(env.end(), 100, 1.0f);
    for (const auto s : states) env.push_back(s ? 1.3f : 1.0f);
    env.insert(env.end(), 100, 1.0f);
    return time_stage("full_frame_decode", env.size(), 4, n, [&] {
      const auto result = rx.demodulate_frame(env);
      g_sink = g_sink +
               (result.payload.empty() ? 0.0f : result.payload[0]);
    });
  });
  stages.push_back([](std::size_t n) {
    // Engine overhead: source -> moving average -> null sink.
    return time_stage("flowgraph_throughput", 65536, 1, n, [&] {
      fdb::fg::Graph graph;
      auto source = std::make_shared<fdb::fg::VectorSourceF>(
          std::vector<float>(65536, 1.0f));
      auto avg = std::make_shared<fdb::fg::MovingAverageBlockF>(32);
      auto sink = std::make_shared<fdb::fg::NullSinkF>();
      const auto s = graph.add(source);
      const auto a = graph.add(avg);
      const auto k = graph.add(sink);
      graph.connect(s, 0, a, 0);
      graph.connect(a, 0, k, 0);
      graph.run();
      g_sink = g_sink + static_cast<float>(sink->consumed());
    });
  });

  const auto results = runner.map(
      stages.size(), [&](std::size_t i) { return stages[i](reps); });

  fdb::sim::Report report("e8_dsp_micro");
  report.set_run_info(reps, runner.jobs());
  auto& sec = report.section(
      "receive-chain stage throughput (Msamples/s per repetition)",
      {"stage", "items_per_rep", "reps", "mean_msps", "ci95_msps",
       "min_msps", "max_msps"});
  for (const auto& r : results) {
    sec.add_row({r.name, r.items_per_rep, r.msps.count(), r.msps.mean(),
                 r.msps.ci95_halfwidth(), r.msps.min(), r.msps.max()});
  }
  report.add_note("Shape check: the per-sample kernels clear a 2 MHz ADC"
                  " rate with wide margins; the sliding correlator and the"
                  " whole-frame decode set the chain's floor, and the"
                  " flowgraph engine costs little over the bare kernels it"
                  " wraps.");
  return report.emit(cli) ? 0 : 1;
}
