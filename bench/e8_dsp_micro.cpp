// E8 — Feasibility table: throughput of each receive-chain stage in
// samples (or chips) per second. A microcontroller-class decoder needs
// the whole chain to clear the ADC rate with a large margin; these
// numbers also put a floor under the flowgraph engine's overhead.
//
// Self-timed (no external benchmark library): each stage owns its state
// and runs `--trials` timed repetitions; repetition throughputs
// aggregate into RunningStats for mean/CI/min/max. Stages fan out
// across the runner's workers — keep --jobs 1 (the default here) for
// the cleanest timings, raise it for a quick smoke pass. Pipe
// `--format json --output BENCH_e8.json` to refresh the committed perf
// trajectory.
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <regex>
#include <string>
#include <vector>

#include "core/feedback.hpp"
#include "core/self_interference.hpp"
#include "dsp/correlator.hpp"
#include "dsp/envelope.hpp"
#include "dsp/fft.hpp"
#include "dsp/fir.hpp"
#include "dsp/moving_average.hpp"
#include "flowgraph/blocks_std.hpp"
#include "flowgraph/graph.hpp"
#include "phy/modem.hpp"
#include "phy/preamble.hpp"
#include "phy/slicer.hpp"
#include "phy/stream_rx.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/synthesis.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

// Sink the compiler cannot prove dead, so timed loops survive -O2.
// thread_local: stages run on runner workers when --jobs > 1, and a
// shared non-atomic sink would be a racing read-modify-write.
thread_local volatile float g_sink = 0.0f;

std::vector<fdb::cf32> random_iq(std::size_t n, std::uint64_t seed) {
  fdb::Rng rng(seed);
  std::vector<fdb::cf32> samples(n);
  for (auto& s : samples) s = rng.cn(1.0);
  return samples;
}

std::vector<float> random_envelope(std::size_t n, std::uint64_t seed) {
  fdb::Rng rng(seed);
  std::vector<float> samples(n);
  for (auto& s : samples) {
    s = 1.0f + 0.1f * static_cast<float>(rng.uniform());
  }
  return samples;
}

struct StageResult {
  std::string name;
  std::size_t items_per_rep = 0;
  fdb::RunningStats msps;  // per-repetition throughput, Msamples/s
};

// Pre-batch reference correlator — the seed's per-sample algorithm,
// which recomputes the window mean and energy from scratch on every
// sample with modulo indexing. Kept here (not in the library) as the
// scalar-loop baseline the batch kernel's speedup is measured against.
class ScalarRefCorrelator {
 public:
  ScalarRefCorrelator(std::vector<float> pattern,
                      std::size_t samples_per_chip) {
    for (const float chip : pattern) {
      for (std::size_t s = 0; s < samples_per_chip; ++s) {
        stretched_.push_back(chip);
      }
    }
    double mean = 0.0;
    for (const float v : stretched_) mean += v;
    mean /= static_cast<double>(stretched_.size());
    for (auto& v : stretched_) {
      v -= static_cast<float>(mean);
      pattern_energy_ += static_cast<double>(v) * v;
    }
    window_len_ = stretched_.size();
    window_.assign(window_len_, 0.0f);
  }

  float process(float x) {
    window_[pos_] = x;
    pos_ = (pos_ + 1) % window_len_;
    if (filled_ < window_len_) {
      ++filled_;
      if (filled_ < window_len_) return 0.0f;
    }
    double mean = 0.0;
    for (const float v : window_) mean += v;
    mean /= static_cast<double>(window_len_);
    double dot = 0.0;
    double energy = 0.0;
    for (std::size_t i = 0; i < window_len_; ++i) {
      const double v = window_[(pos_ + i) % window_len_] - mean;
      dot += v * stretched_[i];
      energy += v * v;
    }
    const double denom = std::sqrt(energy * pattern_energy_);
    if (denom < 1e-12) return 0.0f;
    return static_cast<float>(dot / denom);
  }

 private:
  std::vector<float> stretched_;
  double pattern_energy_ = 0.0;
  std::size_t window_len_ = 0;
  std::vector<float> window_;
  std::size_t pos_ = 0;
  std::size_t filled_ = 0;
};

/// One micro-bench stage: `items` samples processed per inner pass,
/// `inner` passes per timed repetition (so cheap kernels dwarf clock
/// granularity), `pass` does one pass.
StageResult time_stage(const std::string& name, std::size_t items,
                       std::size_t inner, std::size_t reps,
                       const std::function<void()>& pass) {
  StageResult result;
  result.name = name;
  result.items_per_rep = items * inner;
  for (std::size_t warm = 0; warm < 2; ++warm) pass();
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < inner; ++k) pass();
    const auto t1 = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    if (seconds > 0.0) {
      result.msps.add(static_cast<double>(result.items_per_rep) / seconds /
                      1e6);
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/20,
                                 "timed repetitions per stage");
  // Unlike the Monte-Carlo benches, wall-clock numbers are cleanest
  // with one worker; parallel stages only perturb each other.
  if (cli.jobs == 0) cli.jobs = 1;
  const fdb::sim::ExperimentRunner runner(cli.jobs);
  const std::size_t reps = cli.trials;

  using StageFn = std::function<StageResult(std::size_t)>;
  struct NamedStage {
    std::string name;
    StageFn fn;
  };
  std::vector<NamedStage> all_stages;
  const auto add = [&all_stages](std::string name, StageFn fn) {
    all_stages.push_back({std::move(name), std::move(fn)});
  };

  add("envelope_detector", [](std::size_t n) {
    const auto iq = random_iq(4096, 1);
    fdb::dsp::EnvelopeDetector detector(100e3, 2e6);
    std::vector<float> out(iq.size());
    return time_stage("envelope_detector", iq.size(), 64, n, [&] {
      detector.process(iq, out);
      g_sink = g_sink + out[0];
    });
  });
  for (const std::size_t window : {16ul, 64ul, 256ul}) {
    add("moving_average_w" + std::to_string(window),
        [window](std::size_t n) {
          const auto env = random_envelope(4096, 2);
          fdb::dsp::MovingAverage<float> avg(window);
          return time_stage("moving_average_w" + std::to_string(window),
                            env.size(), 64, n, [&] {
                              float acc = 0.0f;
                              for (const float x : env) acc += avg.process(x);
                              g_sink = g_sink + acc;
                            });
        });
  }
  add("fir_taps15", [](std::size_t n) {
    const auto env = random_envelope(4096, 3);
    fdb::dsp::FirFilterF fir(fdb::dsp::design_lowpass(0.2, 15));
    std::vector<float> out(env.size());
    return time_stage("fir_taps15", env.size(), 16, n, [&] {
      fir.process(env, out);
      g_sink = g_sink + out[0];
    });
  });
  // The 63-tap FIR runs twice: once through the block kernel and once
  // through the per-sample scalar wrapper — the pair quantifies what
  // batch processing buys on the same filter.
  add("fir_63tap", [](std::size_t n) {
    const auto env = random_envelope(4096, 3);
    fdb::dsp::FirFilterF fir(fdb::dsp::design_lowpass(0.2, 63));
    std::vector<float> out(env.size());
    return time_stage("fir_63tap", env.size(), 16, n, [&] {
      fir.process(env, out);
      g_sink = g_sink + out[0];
    });
  });
  add("fir_63tap_scalar", [](std::size_t n) {
    const auto env = random_envelope(4096, 3);
    fdb::dsp::FirFilterF fir(fdb::dsp::design_lowpass(0.2, 63));
    return time_stage("fir_63tap_scalar", env.size(), 16, n, [&] {
      float acc = 0.0f;
      for (const float x : env) acc += fir.process(x);
      g_sink = g_sink + acc;
    });
  });
  // Sliding correlator, four ways: the dispatched batch kernel (SIMD
  // blocked dots under FDB_NATIVE), the scalar batch reference it must
  // match bit-for-bit, the per-sample wrapper, and the seed's
  // recompute-per-sample loop. `sliding_correlator` keeps naming the
  // scalar batch path so the committed perf trajectory stays
  // apples-to-apples; `sliding_correlator_simd` is the dispatched API.
  add("sliding_correlator_simd", [](std::size_t n) {
    const auto env = random_envelope(4096, 4);
    fdb::dsp::SlidingCorrelator corr(
        fdb::phy::chips_to_pattern(fdb::phy::default_preamble_chips()), 6);
    std::vector<float> out(env.size());
    return time_stage("sliding_correlator_simd", env.size(), 16, n, [&] {
      corr.process(env, out);
      g_sink = g_sink + out[0];
    });
  });
  add("sliding_correlator", [](std::size_t n) {
    const auto env = random_envelope(4096, 4);
    fdb::dsp::SlidingCorrelator corr(
        fdb::phy::chips_to_pattern(fdb::phy::default_preamble_chips()), 6);
    std::vector<float> out(env.size());
    return time_stage("sliding_correlator", env.size(), 16, n, [&] {
      corr.process_scalar(env, out);
      g_sink = g_sink + out[0];
    });
  });
  add("sliding_correlator_scalar_api", [](std::size_t n) {
    const auto env = random_envelope(4096, 4);
    fdb::dsp::SlidingCorrelator corr(
        fdb::phy::chips_to_pattern(fdb::phy::default_preamble_chips()), 6);
    return time_stage("sliding_correlator_scalar_api", env.size(), 16, n,
                      [&] {
                        float acc = 0.0f;
                        for (const float x : env) acc += corr.process(x);
                        g_sink = g_sink + acc;
                      });
  });
  add("sliding_correlator_scalar", [](std::size_t n) {
    const auto env = random_envelope(4096, 4);
    ScalarRefCorrelator corr(
        fdb::phy::chips_to_pattern(fdb::phy::default_preamble_chips()), 6);
    return time_stage("sliding_correlator_scalar", env.size(), 4, n, [&] {
      float acc = 0.0f;
      for (const float x : env) acc += corr.process(x);
      g_sink = g_sink + acc;
    });
  });
  // Cross-entity slot synthesis, two ways over the same 8-tag slot: the
  // fused select+add coefficient kernel and the historical per-link
  // fold (leak gain, then one keyed reflection pass per entity).
  // Throughput counts output samples, so the ratio is the per-gateway
  // slot-synthesis speedup at this entity count.
  add("synthesis_slot_batched", [](std::size_t n) {
    constexpr std::size_t kSamples = 4096;
    constexpr std::size_t kEntities = 8;
    const auto carrier = random_iq(kSamples, 9);
    fdb::Rng rng(10);
    std::vector<std::uint8_t> states(kEntities * kSamples);
    for (auto& s : states) s = rng.uniform() < 0.5 ? 1 : 0;
    std::vector<const std::uint8_t*> masks(kEntities);
    std::vector<fdb::cf32> c_on(kEntities), c_off(kEntities);
    for (std::size_t e = 0; e < kEntities; ++e) {
      masks[e] = states.data() + e * kSamples;
      c_on[e] = rng.cn(1e-3);
      c_off[e] = rng.cn(1e-4);
    }
    const fdb::cf32 leak = rng.cn(1e-2);
    std::vector<fdb::cf32> scratch(kSamples), out(kSamples);
    return time_stage("synthesis_slot_batched", kSamples, 32, n, [&] {
      fdb::sim::WaveformSynthesizer::synthesize_slot_gateway(
          carrier, leak, masks, c_on, c_off, scratch, out);
      g_sink = g_sink + out[0].real();
    });
  });
  add("synthesis_slot_perlink", [](std::size_t n) {
    constexpr std::size_t kSamples = 4096;
    constexpr std::size_t kEntities = 8;
    const auto carrier = random_iq(kSamples, 9);
    fdb::Rng rng(10);
    std::vector<std::uint8_t> states(kEntities * kSamples);
    for (auto& s : states) s = rng.uniform() < 0.5 ? 1 : 0;
    std::vector<fdb::cf32> c_on(kEntities), c_off(kEntities);
    for (std::size_t e = 0; e < kEntities; ++e) {
      c_on[e] = rng.cn(1e-3);
      c_off[e] = rng.cn(1e-4);
    }
    const fdb::cf32 leak = rng.cn(1e-2);
    std::vector<fdb::cf32> out(kSamples);
    return time_stage("synthesis_slot_perlink", kSamples, 32, n, [&] {
      fdb::sim::WaveformSynthesizer::apply_gain(carrier, leak, out);
      for (std::size_t e = 0; e < kEntities; ++e) {
        fdb::sim::WaveformSynthesizer::add_keyed_reflection(
            carrier, {states.data() + e * kSamples, kSamples}, 0, c_on[e],
            c_off[e], out);
      }
      g_sink = g_sink + out[0].real();
    });
  });
  add("integrate_slice_chain", [](std::size_t n) {
    const auto env = random_envelope(4096, 5);
    fdb::phy::IntegrateAndDump integrator(6);
    fdb::phy::AdaptiveSlicer slicer;
    return time_stage("integrate_slice_chain", env.size(), 32, n, [&] {
      std::vector<float> chips;
      integrator.process(env, chips);
      std::vector<std::uint8_t> bits;
      slicer.process(chips, bits);
      g_sink = g_sink + (bits.empty() ? 0.0f : bits[0]);
    });
  });
  add("self_interference_normalizer", [](std::size_t n) {
    const auto env = random_envelope(4096, 6);
    std::vector<std::uint8_t> states(env.size());
    for (std::size_t i = 0; i < states.size(); ++i) states[i] = (i / 480) % 2;
    std::vector<float> out(env.size());
    return time_stage("self_interference_normalizer", env.size(), 32, n, [&] {
      fdb::core::SelfInterferenceNormalizer::normalize_batch(env, states,
                                                             out);
      g_sink = g_sink + out[0];
    });
  });
  add("feedback_decode", [](std::size_t n) {
    fdb::phy::RateConfig rates;
    rates.samples_per_chip = 6;
    rates.asymmetry = 40;
    const fdb::core::FeedbackConfig config;
    fdb::core::FeedbackDecoder decoder(rates, config);
    const auto env = random_envelope(rates.samples_per_feedback_bit() * 8, 7);
    std::vector<std::uint8_t> own(env.size());
    for (std::size_t i = 0; i < own.size(); ++i) own[i] = (i / 12) % 2;
    return time_stage("feedback_decode", env.size(), 8, n, [&] {
      const auto result = decoder.decode(env, own, 8);
      g_sink = g_sink + (result.bits.empty() ? 0.0f : result.bits[0]);
    });
  });
  for (const std::size_t fft_size : {256ul, 4096ul}) {
    add("fft_" + std::to_string(fft_size), [fft_size](std::size_t n) {
      auto data = random_iq(fft_size, 8);
      return time_stage("fft_" + std::to_string(fft_size), fft_size, 32, n,
                        [&] {
                          fdb::dsp::fft(data);
                          g_sink = g_sink + data[0].real();
                        });
    });
  }
  add("full_frame_decode", [](std::size_t n) {
    // Whole receive chain: sync + slice + FM0 + deframe of a 32B frame.
    fdb::phy::ModemConfig config;
    config.rates.samples_per_chip = 6;
    fdb::phy::BackscatterTx tx(config);
    fdb::phy::BackscatterRx rx(config);
    std::vector<std::uint8_t> payload(32, 0x5A);
    const auto states = tx.modulate_frame(payload);
    std::vector<float> env;
    env.insert(env.end(), 100, 1.0f);
    for (const auto s : states) env.push_back(s ? 1.3f : 1.0f);
    env.insert(env.end(), 100, 1.0f);
    return time_stage("full_frame_decode", env.size(), 4, n, [&] {
      const auto result = rx.demodulate_frame(env);
      g_sink = g_sink +
               (result.payload.empty() ? 0.0f : result.payload[0]);
    });
  });
  add("full_rx_chain", [](std::size_t n) {
    // Streaming receive chain end to end: batch correlation, peak
    // confirmation, and zero-copy frame decode over a continuous
    // multi-frame envelope stream.
    fdb::phy::ModemConfig config;
    config.rates.samples_per_chip = 6;
    fdb::phy::BackscatterTx tx(config);
    std::vector<float> stream(2000, 1.0f);
    for (int f = 0; f < 4; ++f) {
      std::vector<std::uint8_t> payload(32, static_cast<std::uint8_t>(f));
      for (const auto s : tx.modulate_frame(payload)) {
        stream.push_back(s ? 1.3f : 1.0f);
      }
      stream.insert(stream.end(), 1500, 1.0f);
    }
    std::size_t frames = 0;
    fdb::phy::StreamingReceiver receiver(
        config, [&](const fdb::phy::StreamFrame&) { ++frames; });
    return time_stage("full_rx_chain", stream.size(), 4, n, [&] {
      receiver.reset();
      receiver.process(stream);
      g_sink = g_sink + static_cast<float>(frames);
    });
  });
  add("flowgraph_throughput", [](std::size_t n) {
    // Engine overhead: source -> moving average -> null sink.
    return time_stage("flowgraph_throughput", 65536, 1, n, [&] {
      fdb::fg::Graph graph;
      auto source = std::make_shared<fdb::fg::VectorSourceF>(
          std::vector<float>(65536, 1.0f));
      auto avg = std::make_shared<fdb::fg::MovingAverageBlockF>(32);
      auto sink = std::make_shared<fdb::fg::NullSinkF>();
      const auto s = graph.add(source);
      const auto a = graph.add(avg);
      const auto k = graph.add(sink);
      graph.connect(s, 0, a, 0);
      graph.connect(a, 0, k, 0);
      graph.run();
      g_sink = g_sink + static_cast<float>(sink->consumed());
    });
  });

  // --stages: keep only matching stages (exit 2 on a bad regex or an
  // empty selection, so CI typos fail loudly instead of gating nothing).
  std::vector<NamedStage> stages;
  if (cli.stages_filter.empty()) {
    stages = std::move(all_stages);
  } else {
    std::regex re;
    try {
      re = std::regex(cli.stages_filter);
    } catch (const std::regex_error& err) {
      std::fprintf(stderr, "%s: bad --stages regex '%s': %s\n", argv[0],
                   cli.stages_filter.c_str(), err.what());
      return 2;
    }
    for (auto& stage : all_stages) {
      if (std::regex_search(stage.name, re)) {
        stages.push_back(std::move(stage));
      }
    }
    if (stages.empty()) {
      std::fprintf(stderr, "%s: --stages '%s' matched no stage\n", argv[0],
                   cli.stages_filter.c_str());
      return 2;
    }
  }

  const auto results = runner.map(
      stages.size(), [&](std::size_t i) { return stages[i].fn(reps); });

  fdb::sim::Report report("e8_dsp_micro");
  report.set_run_info(reps, runner.jobs());
  auto& sec = report.section(
      "receive-chain stage throughput (Msamples/s per repetition)",
      {"stage", "items_per_rep", "reps", "mean_msps", "ci95_msps",
       "min_msps", "max_msps"});
  for (const auto& r : results) {
    sec.add_row({r.name, r.items_per_rep, r.msps.count(), r.msps.mean(),
                 r.msps.ci95_halfwidth(), r.msps.min(), r.msps.max()});
  }
  report.add_note("Shape check: every stage clears a 2 MHz ADC rate with"
                  " margin. sliding_correlator_simd (dispatched blocked-dot"
                  " kernel) vs sliding_correlator (scalar batch reference,"
                  " bit-identical output) is the SIMD speedup;"
                  " sliding_correlator vs sliding_correlator_scalar (seed"
                  " per-sample loop) is the batch speedup;"
                  " synthesis_slot_batched vs synthesis_slot_perlink is the"
                  " fused cross-entity slot-synthesis gain; full_rx_chain"
                  " times the streaming receiver end to end. --stages REGEX"
                  " runs a subset.");
  return report.emit(cli) ? 0 : 1;
}
