// E2 — Data-link BER vs backscatter distance, feedback on vs off, with
// the analytic link-budget prediction alongside. Also reports the sync
// (acquisition) failure rate, which limits range before bit decisions
// do in any envelope-detection receiver.
#include <vector>

#include "sim/link_budget.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/sweep.hpp"

namespace {

fdb::sim::LinkSimConfig arm(double distance_m, bool feedback) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 1e-9;
  config.a_to_b_m = distance_m;
  config.feedback_active = feedback;
  config.seed = 7;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/60);
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  const auto distances = fdb::sim::linspace(0.5, 4.0, 8);
  std::vector<fdb::sim::Scenario> scenarios;
  for (const double d : distances) {
    scenarios.push_back({arm(d, true), cli.trials, 16});
    scenarios.push_back({arm(d, false), cli.trials, 16});
  }
  const auto summaries = runner.run_batch(scenarios);

  fdb::sim::Report report("e2_ber_vs_distance");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "data BER vs device separation (CW, static, noise 1e-9 W)",
      {"distance_m", "ber_fb_on", "ber_fb_off", "ber_theory", "sync_fail_on",
       "false_sync_on", "harvest_uJ_frame"});
  for (std::size_t i = 0; i < distances.size(); ++i) {
    const auto& on = summaries[2 * i];
    const auto& off = summaries[2 * i + 1];
    const auto budget =
        fdb::sim::compute_link_budget(scenarios[2 * i].config);
    sec.add_row({distances[i], on.aligned_data_ber(), off.aligned_data_ber(),
                 budget.predicted_data_ber, on.sync_failure_rate(),
                 static_cast<double>(on.false_syncs),
                 on.harvested_per_frame_j.mean() * 1e6});
  }
  report.add_note("Shape check: BER rises with distance; fb_on tracks"
                  " fb_off; theory lower-bounds the measurement.");
  return report.emit(cli) ? 0 : 1;
}
