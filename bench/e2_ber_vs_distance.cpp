// E2 — Data-link BER vs backscatter distance, feedback on vs off, with
// the analytic link-budget prediction alongside. Also reports the sync
// (acquisition) failure rate, which limits range before bit decisions
// do in any envelope-detection receiver.
#include <cstdio>

#include "sim/link_budget.hpp"
#include "sim/link_sim.hpp"
#include "sim/sweep.hpp"
#include "util/table.hpp"

namespace {

fdb::sim::LinkSimConfig arm(double distance_m, bool feedback) {
  fdb::sim::LinkSimConfig config;
  config.modem = fdb::core::FdModemConfig::make(4, 6);
  config.carrier = "cw";
  config.fading = "static";
  config.noise_power_override_w = 1e-9;
  config.a_to_b_m = distance_m;
  config.feedback_active = feedback;
  config.seed = 7;
  return config;
}

}  // namespace

int main() {
  std::puts("E2: data BER vs device separation (CW, static, noise 1e-9 W)");
  fdb::Table table({"distance_m", "ber_fb_on", "ber_fb_off", "ber_theory",
                    "sync_fail_on", "false_sync_on", "harvest_uJ_frame"});
  const std::size_t trials = 60;
  for (const double d : fdb::sim::linspace(0.5, 4.0, 8)) {
    const auto on_cfg = arm(d, true);
    fdb::sim::LinkSimulator sim_on(on_cfg);
    fdb::sim::LinkSimulator sim_off(arm(d, false));
    sim_on.set_payload_bytes(16);
    sim_off.set_payload_bytes(16);
    const auto on = sim_on.run(trials);
    const auto off = sim_off.run(trials);
    const auto budget = fdb::sim::compute_link_budget(on_cfg);
    table.add_row_numeric(
        {d, on.aligned_data_ber(), off.aligned_data_ber(),
         budget.predicted_data_ber, on.sync_failure_rate(),
         static_cast<double>(on.false_syncs),
         on.harvested_per_frame_j.mean() * 1e6});
  }
  table.print();
  std::puts("\nShape check: BER rises with distance; fb_on tracks fb_off;"
            " theory lower-bounds the measurement.");
  return 0;
}
