// E14 — Fault injection & graceful degradation. The fault engine
// (sim/faults.hpp) schedules deterministic gateway outages, ambient
// carrier sags, burst interferers, and tag hardware faults from a
// salted side substream; this experiment measures how the stack
// degrades as the master fault intensity rises, whether the paired MAC
// responses recover (dead-gateway failover with measured
// time-to-failover), and whether the hybrid-fidelity engine tells the
// same degradation story as full waveform synthesis.
//
// Every section is deterministic — bit-identical at any --jobs — and
// CI gates on the headline shape: delivery falls monotonically with
// intensity, no cliff at the lowest nonzero intensity, and the
// intensity-0 column reproduces the fault-free engine.
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mac/collision.hpp"
#include "sim/faults.hpp"
#include "sim/fleet.hpp"
#include "sim/network_sim.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace {

using fdb::sim::FaultClass;
using fdb::sim::FidelityMode;
using fdb::sim::GatewayCombining;
using fdb::sim::NetworkSimConfig;
using fdb::sim::NetworkSimSummary;
using fdb::sim::NetworkSimulator;
using fdb::sim::NetworkTagConfig;

// Small single-gateway deployment with headroom: light contention and
// clean static links, so the fault engine — not collisions or the
// channel — is what moves delivery. (The failover section adds a
// second gateway itself; with two gateways under any-combining, a
// single-gateway outage would be masked by macro-diversity and the
// degradation curve would flatten.)
NetworkSimConfig base_config() {
  NetworkSimConfig config;
  config.payload_bytes = 32;
  config.slots_per_trial = 192;
  config.ambient_position = {0.0, 0.0};
  config.receiver_position = {5.0, 0.0};
  for (std::size_t k = 0; k < 5; ++k) {
    NetworkTagConfig tag;
    tag.position = {4.5 + 0.7 * static_cast<double>(k % 3),
                    1.0 + 0.6 * static_cast<double>(k)};
    config.tags.push_back(tag);
  }
  config.backoff_min_slots = 16;
  config.seed = 29;
  // Hotter-than-default fault load so the 192-slot trials see several
  // events per class even at low master intensity; the defaults are
  // tuned for long-running fleet trials.
  config.faults.gateway_outages_per_kslot = 15.0;
  config.faults.gateway_outage_mean_slots = 30.0;
  config.faults.carrier_sags_per_kslot = 15.0;
  config.faults.carrier_sag_mean_slots = 16.0;
  config.faults.carrier_sag_floor = 0.2;
  config.faults.interferer_bursts_per_kslot = 20.0;
  config.faults.interferer_burst_mean_slots = 8.0;
  config.faults.tag_fault_fraction = 0.3;
  return config;
}

NetworkSimSummary run(const fdb::sim::ExperimentRunner& runner,
                      const NetworkSimConfig& config, std::size_t trials) {
  const NetworkSimulator sim(config);
  return runner.run_chunked<NetworkSimSummary>(
      trials, [&sim](NetworkSimSummary& acc, std::size_t trial) {
        acc.add(sim.run_trial(trial));
      });
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/4,
                                       "network trials per resilience arm");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  fdb::sim::Report report("e14_resilience");
  report.set_run_info(cli.trials, runner.jobs());

  // --- graceful degradation sweep ------------------------------------
  // Master intensity x MAC x fidelity. Thinning nests the fault sets
  // across intensities on common random numbers, so each arm's
  // delivery column must fall monotonically.
  const double intensities[] = {0.0, 0.05, 0.1, 0.2, 0.4};
  const std::pair<fdb::mac::MacKind, const char*> macs[] = {
      {fdb::mac::MacKind::kCollisionNotify, "notify"},
      {fdb::mac::MacKind::kTimeout, "timeout"}};
  const std::pair<FidelityMode, const char*> modes[] = {
      {FidelityMode::kWaveform, "waveform"},
      {FidelityMode::kHybrid, "hybrid"}};

  auto& sweep = report.section(
      "graceful degradation: delivery vs fault intensity (deterministic)",
      {"intensity", "mac", "mode", "attempted", "delivered", "delivery_ratio",
       "fault_exposed", "exposed_delivery_ratio", "lost_outage", "lost_sag",
       "lost_interference", "lost_tag_fault"});
  for (const auto& [mac, mac_name] : macs) {
    for (const auto& [mode, mode_name] : modes) {
      for (const double intensity : intensities) {
        auto config = base_config();
        config.mac_kind = mac;
        config.fleet.fidelity = mode;
        config.faults.intensity = intensity;
        const auto s = run(runner, config, cli.trials);
        sweep.add_row({intensity, mac_name, mode_name, s.frames_attempted(),
                       s.frames_delivered(), s.delivery_ratio(),
                       s.faulted_frames_attempted, s.outage_delivery_ratio(),
                       s.frames_lost_outage, s.frames_lost_sag,
                       s.frames_lost_interference, s.frames_lost_tag_fault});
      }
    }
  }

  // --- dead-gateway failover -----------------------------------------
  // Scripted kill of the primary gateway for the whole trial under
  // kBestGateway: every tag starts on it, streaks out, and fails over
  // to the survivor. Timeout MAC, so failed frames complete and feed
  // the streak. time_to_failover is slots from the streak's first
  // failed frame to the switch.
  auto& failover = report.section(
      "dead-gateway failover: scripted primary outage, kBestGateway, "
      "timeout MAC (deterministic)",
      {"streak_frames", "attempted", "delivered", "delivery_ratio",
       "failovers", "mean_time_to_failover_slots", "gw0_decodes",
       "gw1_decodes"});
  for (const std::size_t streak : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    auto config = base_config();
    config.faults = {};  // scripted outage only — no generated load
    config.extra_gateways.push_back({9.0, 0.0});
    config.combining = GatewayCombining::kBestGateway;
    config.mac_kind = fdb::mac::MacKind::kTimeout;
    config.failover_streak_frames = streak;
    config.failover_holdoff_slots = 32;
    config.faults.events.push_back(
        {FaultClass::kGatewayOutage, 0,
         static_cast<std::int64_t>(config.slots_per_trial), 0, 0.0});
    const auto s = run(runner, config, cli.trials);
    failover.add_row({streak, s.frames_attempted(), s.frames_delivered(),
                      s.delivery_ratio(), s.failovers,
                      s.mean_time_to_failover_slots(), s.gateway_decodes[0],
                      s.gateway_decodes[1]});
  }

  // --- cross-fidelity agreement under faults -------------------------
  // The analytic mirror consumes the same slot-domain fault schedule as
  // synthesis; the hybrid engine must report the same degradation.
  auto& agree = report.section(
      "cross-fidelity agreement under faults, waveform vs hybrid "
      "(deterministic)",
      {"intensity", "dr_waveform", "dr_hybrid", "dr_abs_err",
       "exposed_dr_waveform", "exposed_dr_hybrid", "escalation_rate"});
  for (const double intensity : {0.2, 0.6}) {
    auto config = base_config();
    config.faults.intensity = intensity;
    config.fleet.fidelity = FidelityMode::kWaveform;
    const auto wf = run(runner, config, cli.trials);
    config.fleet.fidelity = FidelityMode::kHybrid;
    const auto hy = run(runner, config, cli.trials);
    agree.add_row({intensity, wf.delivery_ratio(), hy.delivery_ratio(),
                   std::abs(wf.delivery_ratio() - hy.delivery_ratio()),
                   wf.outage_delivery_ratio(), hy.outage_delivery_ratio(),
                   hy.escalation_rate()});
  }

  report.add_note(
      "Fault sets are thinned from a fixed intensity-1.0 realisation per "
      "trial (sim/faults.hpp), so they nest across intensities and the "
      "delivery column degrades monotonically under common random "
      "numbers instead of bouncing between unrelated fault draws.");
  report.add_note(
      "fault_exposed counts frames whose decode window overlapped any "
      "fault at the gateways the combining policy listens to; "
      "exposed_delivery_ratio is delivery within that set. "
      "time_to_failover is measured from the first frame of the failure "
      "streak to the gateway switch.");
  return report.emit(cli) ? 0 : 1;
}
