// E13 — Hybrid-fidelity fleet engine. The waveform simulator's
// O(tags x gateways x samples) per slot caps scenes at dozens of tags;
// the fleet engine (sim/fleet.hpp) resolves clear frames analytically,
// escalates only contested ones to sample-level synthesis, and culls
// tags outside every gateway's interference range. This experiment
// measures what that buys: slots/s on the warehouse-10k scenario at
// 100 / 1k / 10k tags under each fidelity mode, the escalation and
// culling accounting behind the speedup, and a cross-fidelity
// agreement table pinning hybrid verdict statistics against the full
// waveform ground truth.
//
// The wall-clock section is explicitly excluded from the jobs-1-vs-8
// determinism gate (its name carries the "[wall-clock]" marker the
// gate strips); every other section is bit-identical at any --jobs.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <regex>
#include <string>
#include <utility>
#include <vector>

#include "sim/fleet.hpp"
#include "sim/network_sim.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

namespace {

using fdb::sim::FidelityMode;

struct SceneSize {
  std::size_t tags;
  std::size_t slots_per_trial;
};

fdb::sim::NetworkSimConfig warehouse(std::size_t tags,
                                     std::size_t slots_per_trial,
                                     FidelityMode mode) {
  auto scenario = fdb::sim::make_scenario("warehouse-10k", tags, 29);
  scenario.config.slots_per_trial = slots_per_trial;
  scenario.config.fleet.fidelity = mode;
  return scenario.config;
}

struct TimedRun {
  fdb::sim::NetworkSimSummary summary;
  double seconds = 0.0;
};

TimedRun run_timed(const fdb::sim::ExperimentRunner& runner,
                   const fdb::sim::NetworkSimConfig& config,
                   std::size_t trials) {
  const fdb::sim::NetworkSimulator sim(config);
  TimedRun out;
  const auto t0 = std::chrono::steady_clock::now();
  out.summary = runner.run_chunked<fdb::sim::NetworkSimSummary>(
      trials, [&sim](fdb::sim::NetworkSimSummary& acc, std::size_t trial) {
        acc.add(sim.run_trial(trial));
      });
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/2,
                                       "network trials per fleet arm");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  // --stages: keep only matching arms, e8-style (exit 2 on a bad regex
  // or an empty selection). Arm names: "<tags>/<mode>" for the timing
  // sweep, "agreement/<scenario>", "stage-breakdown/<mode>".
  const bool have_filter = !cli.stages_filter.empty();
  std::regex stage_re;
  if (have_filter) {
    try {
      stage_re = std::regex(cli.stages_filter);
    } catch (const std::regex_error& err) {
      std::fprintf(stderr, "%s: bad --stages regex '%s': %s\n", argv[0],
                   cli.stages_filter.c_str(), err.what());
      return 2;
    }
  }
  std::size_t matched = 0;
  const auto selected = [&](const std::string& name) {
    if (!have_filter) return true;
    if (!std::regex_search(name, stage_re)) return false;
    ++matched;
    return true;
  };

  fdb::sim::Report report("e13_fleet");
  report.set_run_info(cli.trials, runner.jobs());

  const SceneSize sizes[] = {{100, 96}, {1000, 48}, {10000, 24}};
  const FidelityMode modes[] = {FidelityMode::kWaveform,
                                FidelityMode::kAnalytic,
                                FidelityMode::kHybrid};

  // Rows are buffered locally and the sections created afterwards:
  // Report::section returns a reference that is only valid until the
  // next section() call.
  std::vector<std::vector<fdb::sim::ReportCell>> timing_rows;
  std::vector<std::vector<fdb::sim::ReportCell>> stats_rows;
  for (const SceneSize& size : sizes) {
    double waveform_rate = 0.0;
    for (const FidelityMode mode : modes) {
      if (!selected(std::to_string(size.tags) + "/" +
                    fdb::sim::fidelity_name(mode))) {
        continue;
      }
      const auto config = warehouse(size.tags, size.slots_per_trial, mode);
      const auto run = run_timed(runner, config, cli.trials);
      const auto& s = run.summary;
      const double rate =
          run.seconds > 0.0 ? static_cast<double>(s.slots) / run.seconds
                            : 0.0;
      if (mode == FidelityMode::kWaveform) waveform_rate = rate;
      timing_rows.push_back({size.tags, fdb::sim::fidelity_name(mode),
                             size.slots_per_trial, cli.trials,
                             run.seconds * 1e3, rate,
                             waveform_rate > 0.0 ? rate / waveform_rate
                                                 : 0.0});
      const fdb::sim::NetworkSimulator sim(config);
      stats_rows.push_back(
          {size.tags, fdb::sim::fidelity_name(mode), s.frames_attempted(),
           s.frames_delivered(), s.delivery_ratio(), s.collisions,
           s.escalation_rate(), s.frames_resolved_analytic,
           s.frames_escalated, s.frames_culled, sim.num_culled(),
           s.synthesized_slot_fraction()});
    }
  }
  {
    auto& timing = report.section(
        "warehouse-10k slots/s by scene size and fidelity [wall-clock]",
        {"tags", "mode", "slots_per_trial", "trials", "wall_ms",
         "slots_per_s", "speedup_vs_waveform"});
    for (auto& row : timing_rows) timing.add_row(std::move(row));
  }
  {
    auto& stats = report.section(
        "fleet verdict and escalation accounting (deterministic)",
        {"tags", "mode", "attempted", "delivered", "delivery_ratio",
         "collisions", "escalation_rate", "frames_analytic",
         "frames_escalated", "frames_culled", "culled_tags",
         "synth_slot_fraction"});
    for (auto& row : stats_rows) stats.add_row(std::move(row));
  }

  // Where does a 10k-tag trial actually spend its time? Serial runs
  // with the TrialStageTimes accumulator (pure measurement — the
  // summaries are bit-identical with or without it); excluded from the
  // determinism gates like every [wall-clock] section.
  {
    std::vector<std::vector<fdb::sim::ReportCell>> stage_rows;
    for (const FidelityMode mode : modes) {
      const std::string arm =
          std::string("stage-breakdown/") + fdb::sim::fidelity_name(mode);
      if (!selected(arm)) continue;
      const auto config = warehouse(10000, 24, mode);
      const fdb::sim::NetworkSimulator sim(config);
      fdb::sim::SynthArena arena;
      fdb::sim::TrialStageTimes st;
      fdb::sim::NetworkSimSummary sum;
      for (std::size_t t = 0; t < cli.trials; ++t) {
        sum.add(sim.run_trial(t, arena, &st));
      }
      stage_rows.push_back({std::size_t{10000},
                            fdb::sim::fidelity_name(mode), cli.trials,
                            st.setup_s * 1e3, st.slot_loop_s * 1e3,
                            st.verdict_s * 1e3, st.escalate_s * 1e3,
                            st.total_s() * 1e3});
    }
    auto& stage_sec = report.section(
        "trial stage breakdown, 10k tags, serial [wall-clock]",
        {"tags", "mode", "trials", "setup_ms", "slot_loop_ms", "verdict_ms",
         "escalate_ms", "total_ms"});
    for (auto& row : stage_rows) stage_sec.add_row(std::move(row));
  }

  // Cross-fidelity agreement at a size the waveform path can still
  // afford: the hybrid engine must tell the same network story.
  auto& agree = report.section(
      "cross-fidelity agreement, 100 tags (waveform vs hybrid)",
      {"scenario", "dr_waveform", "dr_hybrid", "dr_abs_err", "coll_waveform",
       "coll_hybrid", "latency_waveform", "latency_hybrid",
       "escalation_rate"});
  for (const char* name : {"warehouse-10k", "city-block"}) {
    if (!selected(std::string("agreement/") + name)) continue;
    auto scenario = fdb::sim::make_scenario(name, 100, 29);
    scenario.config.slots_per_trial = 96;
    scenario.config.fleet.fidelity = FidelityMode::kWaveform;
    const auto wf = run_timed(runner, scenario.config, cli.trials).summary;
    scenario.config.fleet.fidelity = FidelityMode::kHybrid;
    const auto hy = run_timed(runner, scenario.config, cli.trials).summary;
    const auto coll_rate = [](const fdb::sim::NetworkSimSummary& s) {
      return s.frames_attempted()
                 ? static_cast<double>(s.collisions) /
                       static_cast<double>(s.frames_attempted())
                 : 0.0;
    };
    agree.add_row({name, wf.delivery_ratio(), hy.delivery_ratio(),
                   std::abs(wf.delivery_ratio() - hy.delivery_ratio()),
                   coll_rate(wf), coll_rate(hy),
                   wf.mean_detect_latency_slots(),
                   hy.mean_detect_latency_slots(), hy.escalation_rate()});
  }

  report.add_note(
      "Verdict bands: clear-deliver needs the worst-case-interference "
      "margin >= +6 dB, clear-fail needs the zero-interference margin "
      "<= -5 dB; only the contested band in between is synthesized "
      "sample-level in hybrid mode (tests/sim/cross_fidelity_test.cpp "
      "pins clear verdicts to ground truth frame-for-frame).");
  report.add_note(
      "The [wall-clock] sections are excluded from the jobs-1-vs-8 "
      "determinism gate; all other sections are bit-identical at any "
      "--jobs.");
  if (have_filter && matched == 0) {
    std::fprintf(stderr, "%s: --stages '%s' matched no arm\n", argv[0],
                 cli.stages_filter.c_str());
    return 2;
  }
  return report.emit(cli) ? 0 : 1;
}
