// E15 — Scheduled slotframes & multi-hop relaying. The scheduled MAC
// (mac/schedule.hpp) replaces contention with a TSCH-style slotframe:
// dedicated per-tag cells transmit without collisions and hash-keyed
// shared cells absorb retries. This experiment makes the case for it
// in three steps: (1) an ablation on the contention-dominated
// dense-deployment scenario — timeout vs collision-notify vs scheduled
// on identical channels — where the slotframe should all but eliminate
// wasted airtime; (2) the corridor-multihop mesh scenario, where tags
// beyond the cull radius deliver 0 frames until the relay fabric is
// switched on and they reach the gateway in 2-3 scheduled hops; and
// (3) the warehouse-mesh scenario, plus a scripted full-trial outage
// of the primary gateway showing the ETX parent-selection machinery
// re-routing through the fabric (measured by the same failover /
// time-to-failover statistics the gateway failover machine feeds).
//
// Every section is deterministic — bit-identical at any --jobs — and
// CI gates on the headline claim: the scheduled MAC's wasted-slot
// ratio in the dense deployment must undercut both contention MACs.
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mac/collision.hpp"
#include "sim/faults.hpp"
#include "sim/network_sim.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"
#include "sim/scenarios.hpp"

namespace {

using fdb::sim::FaultClass;
using fdb::sim::NetworkSimConfig;
using fdb::sim::NetworkSimSummary;
using fdb::sim::NetworkSimulator;

NetworkSimSummary run(const fdb::sim::ExperimentRunner& runner,
                      const NetworkSimConfig& config, std::size_t trials) {
  const NetworkSimulator sim(config);
  return runner.run_chunked<NetworkSimSummary>(
      trials, [&sim](NetworkSimSummary& acc, std::size_t trial) {
        acc.add(sim.run_trial(trial));
      });
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/4,
                                       "network trials per arm");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  fdb::sim::Report report("e15_schedule");
  report.set_run_info(cli.trials, runner.jobs());

  // --- schedule vs contention ----------------------------------------
  // dense-deployment is the contention-dominated regime (a tight tag
  // ring around the receiver); the scenario accepts any MacKind, so
  // the three policies run on identical deployments, channels and
  // payload draws. Wasted airtime is the headline column: contention
  // burns slots in collisions and backoff-resolved losses, the
  // slotframe assigns each tag its own cells.
  const std::pair<fdb::mac::MacKind, const char*> macs[] = {
      {fdb::mac::MacKind::kTimeout, "timeout"},
      {fdb::mac::MacKind::kCollisionNotify, "notify"},
      {fdb::mac::MacKind::kScheduled, "scheduled"}};
  auto& ablation = report.section(
      "schedule vs contention: dense-deployment ablation (deterministic)",
      {"num_tags", "mac", "attempted", "delivered", "delivery_ratio",
       "collisions", "wasted_airtime_fraction", "goodput_slots_fraction"});
  for (const std::size_t num_tags : {std::size_t{8}, std::size_t{16}}) {
    for (const auto& [mac, mac_name] : macs) {
      auto config =
          fdb::sim::make_scenario("dense-deployment", num_tags).config;
      config.mac_kind = mac;
      const auto s = run(runner, config, cli.trials);
      ablation.add_row({num_tags, mac_name, s.frames_attempted(),
                        s.frames_delivered(), s.delivery_ratio(),
                        s.collisions, s.wasted_airtime_fraction(),
                        s.goodput_slots_fraction()});
    }
  }

  // --- multi-hop relaying: corridor ----------------------------------
  // corridor-multihop strings tags down a 50 m line with the only
  // gateway at the end; the far tags sit beyond the 30 m cull radius.
  // With the relay fabric off they attempt frames into the void; with
  // it on, the same frames ride 2-3 scheduled hops to the gateway.
  auto& corridor = report.section(
      "corridor-multihop: out-of-range delivery through the relay "
      "fabric (deterministic)",
      {"relay", "culled_tags", "culled_attempted", "culled_delivered",
       "relayed_delivered", "relay_tx_frames", "relay_drops",
       "mean_relay_hops", "max_relay_hops"});
  for (const bool relay_on : {false, true}) {
    auto config = fdb::sim::make_scenario("corridor-multihop").config;
    config.relay.enabled = relay_on;
    const NetworkSimulator sim(config);
    const auto s = runner.run_chunked<NetworkSimSummary>(
        cli.trials, [&sim](NetworkSimSummary& acc, std::size_t trial) {
          acc.add(sim.run_trial(trial));
        });
    std::uint64_t culled_tags = 0, culled_attempted = 0, culled_delivered = 0;
    for (std::size_t k = 0; k < s.tags.size(); ++k) {
      if (!sim.tag_culled(k)) continue;
      ++culled_tags;
      culled_attempted += s.tags[k].frames_attempted;
      culled_delivered += s.tags[k].frames_delivered;
    }
    corridor.add_row({relay_on ? "on" : "off", culled_tags, culled_attempted,
                      culled_delivered, s.relayed_delivered, s.relay_tx_frames,
                      s.relay_drops, s.relay_hops.mean(),
                      s.relay_hops.count() ? s.relay_hops.max() : 0.0});
  }

  // --- multi-hop relaying: warehouse mesh + gateway outage -----------
  // warehouse-mesh drains the dead right half of a 100x24 m hall
  // through the fabric. The outage arm scripts both gateways dead for
  // the first half of each trial (one alone is masked by any-gateway
  // macro-diversity): every forward dies at the final hop during the
  // window, the implicit end-to-end NACKs degrade each child's
  // current-link ETX, and the streak machinery re-parents — nonzero
  // failovers with a measured time-to-failover — before delivery
  // recovers in the second half.
  auto& mesh = report.section(
      "warehouse-mesh: fabric drain and ETX re-parenting under a "
      "scripted gateway outage (deterministic)",
      {"arm", "attempted", "delivered", "delivery_ratio",
       "relayed_delivered", "mean_relay_hops", "failovers",
       "mean_time_to_failover_slots"});
  for (const bool outage : {false, true}) {
    auto config = fdb::sim::make_scenario("warehouse-mesh", 24).config;
    if (outage) {
      const auto half = static_cast<std::int64_t>(config.slots_per_trial / 2);
      config.faults.events.push_back(
          {FaultClass::kGatewayOutage, 0, half, 0, 0.0});
      config.faults.events.push_back(
          {FaultClass::kGatewayOutage, 0, half, 1, 0.0});
    }
    const auto s = run(runner, config, cli.trials);
    mesh.add_row({outage ? "gw-outage" : "baseline", s.frames_attempted(),
                  s.frames_delivered(), s.delivery_ratio(),
                  s.relayed_delivered, s.relay_hops.mean(), s.failovers,
                  s.mean_time_to_failover_slots()});
  }

  report.add_note(
      "The ablation reuses the dense-deployment scenario verbatim and "
      "only swaps mac_kind, so all three MACs see identical geometry, "
      "channels and payload draws; wasted_airtime_fraction is "
      "wasted_slots / total slots.");
  report.add_note(
      "Relay hop counts include the final relay-to-gateway hop, so a "
      "frame that transited one relay reports 2 hops. The final hop is "
      "decoded conservatively: a clear-deliver verdict on a forwarded "
      "frame is demoted to contested before combining.");
  return report.emit(cli) ? 0 : 1;
}
