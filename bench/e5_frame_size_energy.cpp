// E5 — Frame sizing and energy. Instant block-level feedback removes
// the classic pressure to keep frames small on lossy links: FD-ARQ
// goodput is nearly flat in frame size while stop-and-wait forces a
// painful optimum. Energy per delivered bit (per-state tag power model)
// follows airtime, so the same shape appears in joules.
#include <cstdio>

#include "energy/ledger.hpp"
#include "mac/arq.hpp"
#include "util/table.hpp"

namespace {

double energy_per_bit(const fdb::mac::ArqStats& stats, double bit_time_s) {
  // The tag backscatters (or listens) for the whole airtime; idle
  // otherwise. Energy per delivered payload bit in nanojoules.
  fdb::energy::EnergyLedger ledger;
  ledger.spend(fdb::energy::TagState::kBackscattering,
               static_cast<double>(stats.airtime_bits) * bit_time_s);
  return ledger.energy_per_bit_j(stats.payload_bits_delivered) * 1e9;
}

}  // namespace

int main() {
  std::puts("E5: goodput and energy/bit vs frame size at BER 2e-3");
  fdb::Table table({"frame_bytes", "fd_goodput", "sw_goodput",
                    "fd_nJ_per_bit", "sw_nJ_per_bit", "fd_retx_frac"});
  const double ber = 2e-3;
  const double bit_time_s = 1.0 / 50e3;  // 50 kbps data stream
  for (const std::size_t frame_bytes :
       {32ul, 64ul, 128ul, 256ul, 512ul, 1024ul}) {
    fdb::mac::ArqParams params;
    params.payload_bytes = frame_bytes;
    params.block_bytes = 8;
    params.max_attempts = 200;
    fdb::mac::IidBlockChannel ch_fd(ber, 0.0, fdb::Rng(5));
    fdb::mac::IidBlockChannel ch_sw(ber, 0.0, fdb::Rng(5));
    fdb::mac::FullDuplexInstantArq fd;
    fdb::mac::StopAndWaitArq sw;
    const std::size_t frames = 40000 / frame_bytes + 20;
    const auto fd_stats = fd.run(frames, ch_fd, params);
    const auto sw_stats = sw.run(frames, ch_sw, params);
    table.add_row_numeric(
        {static_cast<double>(frame_bytes), fd_stats.goodput(),
         sw_stats.goodput(), energy_per_bit(fd_stats, bit_time_s),
         energy_per_bit(sw_stats, bit_time_s),
         fd_stats.blocks_sent
             ? static_cast<double>(fd_stats.blocks_retransmitted) /
                   static_cast<double>(fd_stats.blocks_sent)
             : 0.0});
  }
  table.print();
  std::puts("\nShape check: fd_goodput flat (slightly rising) in frame"
            " size; sw_goodput collapses for large frames; energy/bit"
            " mirrors goodput inversely.");
  return 0;
}
