// E5 — Frame sizing and energy. Instant block-level feedback removes
// the classic pressure to keep frames small on lossy links: FD-ARQ
// goodput is nearly flat in frame size while stop-and-wait forces a
// painful optimum. Energy per delivered bit (per-state tag power model)
// follows airtime, so the same shape appears in joules.
#include <vector>

#include "energy/ledger.hpp"
#include "mac/arq.hpp"
#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace {

double energy_per_bit(const fdb::mac::ArqStats& stats, double bit_time_s) {
  // The tag backscatters (or listens) for the whole airtime; idle
  // otherwise. Energy per delivered payload bit in nanojoules.
  fdb::energy::EnergyLedger ledger;
  ledger.spend(fdb::energy::TagState::kBackscattering,
               static_cast<double>(stats.airtime_bits) * bit_time_s);
  return ledger.energy_per_bit_j(stats.payload_bits_delivered) * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/0,
                                       "ARQ frames per point (0 = scale"
                                       " with frame size)");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  const double ber = 2e-3;
  const double bit_time_s = 1.0 / 50e3;  // 50 kbps data stream
  const std::vector<std::size_t> frame_sizes = {32, 64, 128, 256, 512, 1024};

  const auto rows = runner.map(frame_sizes.size(), [&](std::size_t i) {
    const std::size_t frame_bytes = frame_sizes[i];
    fdb::mac::ArqParams params;
    params.payload_bytes = frame_bytes;
    params.block_bytes = 8;
    params.max_attempts = 200;
    fdb::mac::IidBlockChannel ch_fd(ber, 0.0, fdb::Rng(5));
    fdb::mac::IidBlockChannel ch_sw(ber, 0.0, fdb::Rng(5));
    fdb::mac::FullDuplexInstantArq fd;
    fdb::mac::StopAndWaitArq sw;
    // Default keeps the delivered-byte budget constant across points.
    const std::size_t frames =
        cli.trials ? cli.trials : 40000 / frame_bytes + 20;
    const auto fd_stats = fd.run(frames, ch_fd, params);
    const auto sw_stats = sw.run(frames, ch_sw, params);
    return std::vector<double>{
        static_cast<double>(frame_bytes), fd_stats.goodput(),
        sw_stats.goodput(), energy_per_bit(fd_stats, bit_time_s),
        energy_per_bit(sw_stats, bit_time_s),
        fd_stats.blocks_sent
            ? static_cast<double>(fd_stats.blocks_retransmitted) /
                  static_cast<double>(fd_stats.blocks_sent)
            : 0.0};
  });

  fdb::sim::Report report("e5_frame_size_energy");
  report.set_run_info(cli.trials, runner.jobs());
  auto& sec = report.section(
      "goodput and energy/bit vs frame size at BER 2e-3",
      {"frame_bytes", "fd_goodput", "sw_goodput", "fd_nJ_per_bit",
       "sw_nJ_per_bit", "fd_retx_frac"});
  for (const auto& row : rows) sec.add_row_numeric(row);
  report.add_note("Shape check: fd_goodput flat (slightly rising) in frame"
                  " size; sw_goodput collapses for large frames; energy/bit"
                  " mirrors goodput inversely.");
  return report.emit(cli) ? 0 : 1;
}
