# Runs one bench binary twice (--jobs 1 vs --jobs 8) and fails unless the
# JSON "sections" (all result rows) are bit-identical — the determinism
# contract of the experiment runner and the trial-pure simulators.
# Sections whose name carries a "[wall-clock]" marker hold timing
# measurements and are stripped before the compare (e13's slots/s).
# Invoked by ctest with -DBENCH_BIN=<path> -DPYTHON3=<path> -DTRIALS=<n>.
if(NOT TRIALS)
  set(TRIALS 4)
endif()

get_filename_component(bench_name "${BENCH_BIN}" NAME)
set(tmp "$ENV{TMPDIR}")
if(NOT tmp)
  set(tmp "/tmp")
endif()

foreach(jobs 1 8)
  execute_process(
    COMMAND "${BENCH_BIN}" --trials ${TRIALS} --jobs ${jobs} --format json
    OUTPUT_VARIABLE bench_output
    RESULT_VARIABLE bench_status)
  if(NOT bench_status EQUAL 0)
    message(FATAL_ERROR
      "${BENCH_BIN} --jobs ${jobs} exited with status ${bench_status}")
  endif()
  file(WRITE "${tmp}/fdb_${bench_name}_j${jobs}.json" "${bench_output}")
endforeach()

execute_process(
  COMMAND "${PYTHON3}" -c
"import json, sys
strip = lambda d: [s for s in d['sections'] if '[wall-clock]' not in s['name']]
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert a['sections'], 'no sections emitted'
assert strip(a) == strip(b), 'results differ across job counts'
"
  "${tmp}/fdb_${bench_name}_j1.json"
  "${tmp}/fdb_${bench_name}_j8.json"
  RESULT_VARIABLE cmp_status
  ERROR_VARIABLE cmp_error)
file(REMOVE "${tmp}/fdb_${bench_name}_j1.json" "${tmp}/fdb_${bench_name}_j8.json")
if(NOT cmp_status EQUAL 0)
  message(FATAL_ERROR
    "${BENCH_BIN}: jobs=1 vs jobs=8 results are not bit-identical: ${cmp_error}")
endif()
