// E10 (ablation) — the design choices DESIGN.md calls out, each toggled
// in isolation at a fixed noisy operating point:
//
//   A. self-interference handling off  (decode ignores own states)
//   B. feedback self-gating off        (plain window average)
//   C. Manchester feedback -> NRZ
//   D. FM0 line code -> Manchester / NRZ on the data plane
//   E. slicer hysteresis on
#include <cstdio>
#include <string>

#include "sim/link_sim.hpp"
#include "util/table.hpp"

namespace {

fdb::sim::LinkSimConfig base_config() {
  fdb::sim::LinkSimConfig config;
  // Stress point: 1.5 m separation, 12-sample chips, noise placed so
  // acquisition still works but bit decisions run at ~1% BER — margins
  // small enough that each design choice shows up. (At the quickstart
  // geometry every arm is error-free and the ablation shows nothing.)
  config.modem = fdb::core::FdModemConfig::make(4, 12);
  config.carrier = "cw";
  config.fading = "static";
  config.a_to_b_m = 1.5;
  config.noise_power_override_w = 4e-9;
  config.seed = 123;
  return config;
}

void run_arm(fdb::Table& table, const std::string& name,
             fdb::sim::LinkSimConfig config) {
  fdb::sim::LinkSimulator sim(config);
  sim.set_payload_bytes(16);
  const auto s = sim.run(50);
  table.add_row({name, fdb::format_g(s.aligned_data_ber()),
                 fdb::format_g(s.feedback_ber()),
                 fdb::format_g(s.sync_failure_rate())});
}

}  // namespace

int main() {
  std::puts("E10: design-choice ablations — data plane"
            " (CW, static, 1.5 m, noise 4e-9 W, feedback active)");
  fdb::Table table({"arm", "data_ber", "feedback_ber", "sync_fail"});

  run_arm(table, "full design", base_config());

  {
    auto config = base_config();
    config.modem.feedback.average = fdb::core::FeedbackAverage::kWindow;
    run_arm(table, "no self-gating (B)", config);
  }
  {
    auto config = base_config();
    config.modem.feedback.coding = fdb::core::FeedbackCoding::kNrz;
    run_arm(table, "NRZ feedback (C)", config);
  }
  {
    auto config = base_config();
    config.modem.data.line_code = fdb::phy::LineCode::kManchester;
    run_arm(table, "Manchester data (D1)", config);
  }
  {
    auto config = base_config();
    config.modem.data.line_code = fdb::phy::LineCode::kNrz;
    run_arm(table, "NRZ data (D2)", config);
  }
  {
    auto config = base_config();
    config.modem.data.slicer.hysteresis = 0.1f;
    run_arm(table, "slicer hysteresis (E)", config);
  }
  {
    auto config = base_config();
    config.self_coupling = 0.0;  // idealised: no own-reflection at all
    run_arm(table, "no self-coupling (ideal)", config);
  }

  table.print();

  // The feedback plane's ablations need a harsher point (the slow
  // stream's averaging hides them otherwise): push the devices apart
  // and raise the noise, as in E3.
  std::puts("\nE10b: feedback-plane ablations (2.5 m, noise 2e-8 W)");
  fdb::Table fb_table({"arm", "data_ber", "feedback_ber", "sync_fail"});
  auto stress = []() {
    auto config = base_config();
    config.modem = fdb::core::FdModemConfig::make(4, 6);
    config.a_to_b_m = 2.5;
    config.noise_power_override_w = 2e-8;
    return config;
  };
  run_arm(fb_table, "full design", stress());
  {
    auto config = stress();
    config.modem.feedback.average = fdb::core::FeedbackAverage::kWindow;
    run_arm(fb_table, "no self-gating (B)", config);
  }
  {
    auto config = stress();
    config.modem.feedback.coding = fdb::core::FeedbackCoding::kNrz;
    run_arm(fb_table, "NRZ feedback (C)", config);
  }
  fb_table.print();

  std::puts("\nShape check: the full design matches the idealised"
            " no-self-coupling arm on the data plane (normalisation"
            " works) and keeps the feedback error-free at the stress"
            " point where plain window averaging collapses; Manchester"
            " data payloads mimic the alternating preamble and wreck"
            " acquisition (FM0's boundary structure avoids this); the"
            " hysteresis knob costs real margin at small swings and"
            " earns its keep only on bursty envelopes.");
  return 0;
}
