// E10 (ablation) — the design choices DESIGN.md calls out, each toggled
// in isolation at a fixed noisy operating point:
//
//   A. self-interference handling off  (decode ignores own states)
//   B. feedback self-gating off        (plain window average)
//   C. Manchester feedback -> NRZ
//   D. FM0 line code -> Manchester / NRZ on the data plane
//   E. slicer hysteresis on
#include <string>
#include <vector>

#include "sim/report.hpp"
#include "sim/runner.hpp"

namespace {

fdb::sim::LinkSimConfig base_config() {
  fdb::sim::LinkSimConfig config;
  // Stress point: 1.5 m separation, 12-sample chips, noise placed so
  // acquisition still works but bit decisions run at ~1% BER — margins
  // small enough that each design choice shows up. (At the quickstart
  // geometry every arm is error-free and the ablation shows nothing.)
  config.modem = fdb::core::FdModemConfig::make(4, 12);
  config.carrier = "cw";
  config.fading = "static";
  config.a_to_b_m = 1.5;
  config.noise_power_override_w = 4e-9;
  config.seed = 123;
  return config;
}

void fill_section(fdb::sim::ReportSection& sec,
                  const std::vector<std::string>& names,
                  const std::vector<fdb::sim::LinkSimSummary>& summaries,
                  std::size_t offset) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& s = summaries[offset + i];
    sec.add_row({names[i], s.aligned_data_ber(), s.feedback_ber(),
                 s.sync_failure_rate()});
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = fdb::sim::parse_cli(argc, argv, /*default_trials=*/50,
                                       "trials per ablation arm");
  const fdb::sim::ExperimentRunner runner(cli.jobs);

  // Data-plane arms at the main stress point.
  std::vector<std::string> data_names;
  std::vector<fdb::sim::Scenario> scenarios;
  auto add_data_arm = [&](const std::string& name,
                          fdb::sim::LinkSimConfig config) {
    data_names.push_back(name);
    scenarios.push_back({config, cli.trials, 16});
  };
  add_data_arm("full design", base_config());
  {
    auto config = base_config();
    config.modem.feedback.average = fdb::core::FeedbackAverage::kWindow;
    add_data_arm("no self-gating (B)", config);
  }
  {
    auto config = base_config();
    config.modem.feedback.coding = fdb::core::FeedbackCoding::kNrz;
    add_data_arm("NRZ feedback (C)", config);
  }
  {
    auto config = base_config();
    config.modem.data.line_code = fdb::phy::LineCode::kManchester;
    add_data_arm("Manchester data (D1)", config);
  }
  {
    auto config = base_config();
    config.modem.data.line_code = fdb::phy::LineCode::kNrz;
    add_data_arm("NRZ data (D2)", config);
  }
  {
    auto config = base_config();
    config.modem.data.slicer.hysteresis = 0.1f;
    add_data_arm("slicer hysteresis (E)", config);
  }
  {
    auto config = base_config();
    config.self_coupling = 0.0;  // idealised: no own-reflection at all
    add_data_arm("no self-coupling (ideal)", config);
  }

  // The feedback plane's ablations need a harsher point (the slow
  // stream's averaging hides them otherwise): push the devices apart
  // and raise the noise, as in E3.
  auto stress = []() {
    auto config = base_config();
    config.modem = fdb::core::FdModemConfig::make(4, 6);
    config.a_to_b_m = 2.5;
    config.noise_power_override_w = 2e-8;
    return config;
  };
  std::vector<std::string> fb_names;
  auto add_fb_arm = [&](const std::string& name,
                        fdb::sim::LinkSimConfig config) {
    fb_names.push_back(name);
    scenarios.push_back({config, cli.trials, 16});
  };
  add_fb_arm("full design", stress());
  {
    auto config = stress();
    config.modem.feedback.average = fdb::core::FeedbackAverage::kWindow;
    add_fb_arm("no self-gating (B)", config);
  }
  {
    auto config = stress();
    config.modem.feedback.coding = fdb::core::FeedbackCoding::kNrz;
    add_fb_arm("NRZ feedback (C)", config);
  }

  // Both planes run as one batch so all ten arms share the worker pool.
  const auto summaries = runner.run_batch(scenarios);

  fdb::sim::Report report("e10_ablation");
  report.set_run_info(cli.trials, runner.jobs());
  auto& data_sec = report.section(
      "design-choice ablations, data plane"
      " (CW, static, 1.5 m, noise 4e-9 W, feedback active)",
      {"arm", "data_ber", "feedback_ber", "sync_fail"});
  fill_section(data_sec, data_names, summaries, 0);
  auto& fb_sec = report.section(
      "feedback-plane ablations (2.5 m, noise 2e-8 W)",
      {"arm", "data_ber", "feedback_ber", "sync_fail"});
  fill_section(fb_sec, fb_names, summaries, data_names.size());

  report.add_note("Shape check: the full design matches the idealised"
                  " no-self-coupling arm on the data plane (normalisation"
                  " works) and keeps the feedback error-free at the stress"
                  " point where plain window averaging collapses; Manchester"
                  " data payloads mimic the alternating preamble and wreck"
                  " acquisition (FM0's boundary structure avoids this); the"
                  " hysteresis knob costs real margin at small swings and"
                  " earns its keep only on bursty envelopes.");
  return report.emit(cli) ? 0 : 1;
}
